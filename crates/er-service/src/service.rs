//! The online entity-matching service.
//!
//! Request flow (one `are these two records the same?` question):
//!
//! ```text
//! submit(pair)
//!   ├─ answer cache hit ──────────────────────────────▶ MatchDecision (Cache)
//!   └─ miss ─▶ coalescing queue ─▶ dispatcher drain
//!                (batch_size reached or deadline)
//!                  ▼
//!              worker pool
//!                  │ plan: dedupe by fingerprint, attach to identical
//!                  │ in-flight questions, diversity batches + demos
//!                  │ (batcher_core::plan_with_prepared_pool)
//!                  ▼
//!              worker pool ─▶ cost governor reserve
//!                  ├─ granted: LLM batch call ─▶ answers ─▶ cache fill
//!                  │                                        (Llm)
//!                  └─ denied (budget): logistic fallback ─▶ (Fallback)
//! ```
//!
//! Concurrent clients thereby get the paper's batch economics without
//! coordinating: whoever happens to be in flight together shares one
//! prompt's task description and demonstrations. The budget is a hard
//! cap — when projected spend would cross it the service degrades to the
//! offline-trained logistic matcher instead of failing requests.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use baselines::features::base_features;
use baselines::logistic::{LogisticModel, TrainConfig};
use batcher_core::incremental::{PlanKind, PlanState, DEFAULT_MAX_DELTA_FRACTION};
use batcher_core::{
    build_batch_prompt, task_description, BatchPlanConfig, DistanceKind, ExecutionOutcome,
    Executor, ExtractorKind, PreparedPool,
};
use er_core::{
    CostLedger, EntityPair, LabeledPair, MatchLabel, Money, SharedCostLedger, TokenCount,
    LABEL_COST_PER_PAIR,
};
use llm::{count_tokens, ChatApi, ModelKind, PriceTable};

use crate::breaker::Breaker;
use crate::cache::AnswerCache;
use crate::durable::{DurableLog, DurableRecord, RecoveryReport, WalConfig};
use crate::fingerprint::{pair_fingerprint, PairFingerprint, FINGERPRINT_VERSION};
use crate::flight::FlightRecorder;
use crate::governor::{CostGovernor, ShardLease};
use crate::shard::{ShardRouter, SubmitOutcome};
use crate::stats::{HealthReport, ServiceStats};
use crate::sync::lock;
use crate::telemetry::{ShardTelemetry, Telemetry};

/// Who produced a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionSource {
    /// Served from the answer cache — zero incremental cost.
    Cache,
    /// Answered by the LLM as part of a coalesced batch.
    Llm,
    /// Answered by the local logistic matcher (budget exhausted, or the
    /// LLM returned nothing parseable for this question).
    Fallback,
}

impl DecisionSource {
    /// Stable lowercase name used on the wire.
    pub fn name(self) -> &'static str {
        match self {
            DecisionSource::Cache => "cache",
            DecisionSource::Llm => "llm",
            DecisionSource::Fallback => "fallback",
        }
    }
}

/// The service's answer to one pair question.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchDecision {
    /// The verdict.
    pub label: MatchLabel,
    /// Who produced it.
    pub source: DecisionSource,
    /// The canonical fingerprint of the question.
    pub fingerprint: PairFingerprint,
    /// Id of the submitting call's lifecycle span (0 when tracing is
    /// off), echoed on the wire so clients can correlate with `/trace`.
    pub trace_id: u64,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Model the worker pool calls.
    pub model: ModelKind,
    /// Questions per coalesced batch (the paper's `b`; §VI-A uses 8).
    pub batch_size: usize,
    /// Maximum time a question waits for co-batched traffic before the
    /// queue flushes a partial batch.
    pub flush_deadline: Duration,
    /// Hard cap on total spend (API + labeling).
    pub budget: Money,
    /// Master determinism seed (batch planning and LLM sampling).
    pub seed: u64,
    /// Answer-cache switch (disable to measure its savings).
    pub cache_enabled: bool,
    /// Maximum answer-cache entries (generational eviction above this).
    pub cache_capacity: usize,
    /// Executor retries per batch.
    pub max_retries: u32,
    /// LLM worker threads (batches in flight concurrently).
    pub workers: usize,
    /// Domain word used in the prompt's task description.
    pub domain: String,
    /// Fixed completion-token allowance per question, added on top of the
    /// question's own token count when projecting a batch's worst-case
    /// cost (the simulator's rationale lines quote question content, so
    /// an answer is bounded by the question plus this overhead).
    pub completion_allowance: u64,
    /// Fallback threshold of the incremental planner: when the questions
    /// inserted + retired since the last plan exceed this fraction of the
    /// previously planned pool, the planner re-plans from scratch
    /// (re-deriving its frozen clustering/covering thresholds) instead of
    /// applying the delta.
    pub max_plan_delta_fraction: f64,
    /// Telemetry switch: metrics registry + lifecycle tracing. Off, every
    /// handle is a single-branch no-op (the serving bench prices this).
    pub telemetry: bool,
    /// Completed lifecycle spans retained for `GET /trace`.
    pub trace_capacity: usize,
    /// Durable write-ahead log. `Some` journals every answer and
    /// reserve/settle/refund event and replays them at startup, so a
    /// restart re-buys zero settled answers; `None` keeps all state in
    /// memory (the pre-durability behavior).
    pub wal: Option<WalConfig>,
    /// Consecutive dead-endpoint batches (no answers, no billed calls)
    /// before the circuit breaker opens and batches short-circuit to the
    /// logistic fallback without reserving budget. `0` disables.
    pub breaker_threshold: u32,
    /// How long an open breaker holds before admitting a probe batch.
    pub breaker_cooldown: Duration,
    /// Answer-latency SLO threshold: a submit is "good" for the latency
    /// objective when it answers within this many microseconds.
    pub slo_latency_us: u64,
    /// Where the flight recorder writes anomaly debug bundles. `None`
    /// keeps bundles in memory only (still fetchable at
    /// `GET /debug/bundle`).
    pub flight_dir: Option<std::path::PathBuf>,
    /// Independent serving shards (must be a power of two). Each shard
    /// owns its own coalescing queue, epoch-tracked incremental planner,
    /// answer-cache partition and governor lease, keyed by the symmetric
    /// answer fingerprint — so duplicates and mirrored pairs always land
    /// on the owning shard and the exactly-once guarantees hold without
    /// cross-shard coordination. `1` is the unsharded layout.
    pub shards: usize,
    /// Admission bound per shard: submits arriving while this many
    /// questions are already pending on the owning shard are shed
    /// (`try_submit` returns [`SubmitOutcome::Shed`]; the HTTP front end
    /// maps it to `429` + `Retry-After`; blocking `submit` degrades to
    /// the local fallback). `0` disables shedding (unbounded queues).
    pub queue_capacity: usize,
    /// Governor-lease refill granularity per shard. [`Money::ZERO`]
    /// (the default) reserves exactly per batch against the global pool
    /// — byte-identical budget accounting to the unsharded service.
    /// A positive chunk buffers budget shard-locally, trading exact
    /// quiesce conservation (until the lease is returned) for fewer
    /// global reserve-lock acquisitions under contention.
    pub lease_chunk: Money,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Gpt35Turbo0301,
            batch_size: 8,
            flush_deadline: Duration::from_millis(25),
            budget: Money::from_dollars(1.0),
            seed: 42,
            cache_enabled: true,
            cache_capacity: 100_000,
            max_retries: 2,
            workers: 2,
            domain: "Product".to_owned(),
            completion_allowance: 24,
            max_plan_delta_fraction: DEFAULT_MAX_DELTA_FRACTION,
            telemetry: true,
            trace_capacity: 1024,
            wal: None,
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_millis(250),
            slo_latency_us: 250_000,
            flight_dir: None,
            shards: 1,
            queue_capacity: 4096,
            lease_chunk: Money::ZERO,
        }
    }
}

/// One waiting `submit` call: its decision channel plus its lifecycle
/// span, stamped by pipeline stages as the question moves. The span is
/// finished only by the `submit` call that opened it (on receipt), so a
/// span reaches its terminal stage exactly once no matter which path —
/// batch, coalesce, fallback, disconnect — produced the decision.
struct Waiter {
    tx: Sender<MatchDecision>,
    trace: u64,
}

/// One question waiting in the coalescing queue.
struct Pending {
    fp: PairFingerprint,
    pair: EntityPair,
    waiter: Waiter,
    /// Arrival time at `submit` — carried into the planner so a held
    /// partial-batch question's dispatch deadline anchors to when the
    /// client actually asked, keeping `flush_deadline` a true bound on
    /// queue+hold wait.
    enqueued: Instant,
}

struct QueueState {
    pending: Vec<Pending>,
    /// Set when the first pending item arrived (deadline anchor).
    oldest: Option<Instant>,
    /// When the oldest *planned-but-held* partial-batch question must be
    /// dispatched (set by the planner, armed under the queue lock so the
    /// dispatcher's wait cannot miss it).
    straggler_deadline: Option<Instant>,
    stopping: bool,
}

/// One question the planner holds: planned into a partial batch and kept
/// for the next epoch in the hope of fuller co-batched traffic.
struct QueuedQuestion {
    pair: EntityPair,
    waiters: Vec<Waiter>,
    /// First arrival time — partial batches dispatch once this exceeds
    /// the flush deadline.
    since: Instant,
}

/// The epoch-tracked planner: the incremental [`PlanState`] plus the
/// service-side bookkeeping of which questions it currently owns.
///
/// Lifecycle of a question: `insert` on first arrival (later identical
/// arrivals attach their waiters), planned every epoch, `retire` at
/// dispatch (execution owns it from there, via `in_flight`). Questions
/// persisting across epochs — partial-batch stragglers — are exactly
/// what makes the next epoch a small delta.
struct Planner {
    state: PlanState,
    queued: HashMap<PairFingerprint, QueuedQuestion>,
}

/// One planned batch handed to the worker pool.
struct BatchJob {
    /// The shard that planned (and owns) this batch.
    shard: usize,
    /// `(fingerprint, pair, waiters)` per question.
    questions: Vec<(PairFingerprint, EntityPair, Vec<Waiter>)>,
    /// Demonstration indices into the shared pool.
    demo_indices: Vec<usize>,
    /// Executor seed for this batch.
    seed: u64,
}

/// Work processed by the pool. Planning runs on the pool too — clustering
/// and demonstration selection are O(flush²) and would otherwise
/// serialize every flush behind the per-shard dispatcher threads,
/// stalling the queues past their deadline under sustained load.
enum WorkItem {
    /// A drained queue generation of one shard to dedupe, plan and split
    /// into batches. `urgent` marks deadline- or shutdown-triggered
    /// flushes: every planned batch dispatches, including partial ones (a
    /// size-triggered flush may instead hold partial batches for the next
    /// epoch).
    Plan {
        shard: usize,
        drained: Vec<Pending>,
        urgent: bool,
    },
    /// One planned batch to execute against the LLM.
    Batch(BatchJob),
    /// Terminate one worker (the last dispatcher sends one per worker).
    Shutdown,
}

/// One serving shard: everything that used to be the service's single
/// coalescing/planning core, now owned per fingerprint partition. The
/// LLM worker pool, the breaker, the cost ledger and the durable log
/// stay global — contention lives in the queue and the planner lock,
/// and those are what sharding splits.
struct ShardState {
    queue: Mutex<QueueState>,
    queue_cond: Condvar,
    /// The epoch-tracked incremental planner (see [`Planner`]).
    planner: Mutex<Planner>,
    /// Questions currently being asked by an executing batch. Later
    /// arrivals for the same fingerprint attach here instead of paying
    /// for a second LLM slot (and risking a contradictory answer).
    /// Fingerprint routing makes this naturally shard-local.
    in_flight: Mutex<HashMap<PairFingerprint, Vec<Waiter>>>,
    /// This shard's answer-cache partition (LRU-bounded to its share of
    /// the configured capacity).
    cache: AnswerCache,
    /// This shard's slice of the budget (pass-through by default).
    lease: ShardLease,
    /// High-water mark of the pending queue this run (`/stats` reports
    /// the max across shards — the admission controller's key signal).
    depth_peak: AtomicU64,
    /// Per-shard metric handles (`er_shard_*` families).
    tel: ShardTelemetry,
}

struct Inner {
    config: ServiceConfig,
    plan_template: BatchPlanConfig,
    api: Arc<dyn ChatApi>,
    /// Demonstration pool (labels consumed on demand, priced per use).
    pool: Vec<LabeledPair>,
    /// The pool featurized once at startup — flushes must not re-embed a
    /// static pool on the dispatcher's critical path.
    prepared_pool: PreparedPool,
    /// Pool indices already human-labeled (labeling is paid once).
    labeled: Mutex<HashSet<usize>>,
    fallback: LogisticModel,
    governor: CostGovernor,
    /// The durable journal (answers + governor events), when configured.
    durable: Option<Arc<DurableLog>>,
    /// What startup replay reconstructed, echoed on `/stats` + `/healthz`.
    recovery: Option<RecoveryReport>,
    /// LLM-endpoint circuit breaker (outage → logistic degradation).
    breaker: Breaker,
    /// Fingerprint → shard map.
    router: ShardRouter,
    /// The serving shards (`config.shards` of them).
    shards: Vec<ShardState>,
    /// Workers still running. The last worker out drains any questions
    /// the planners still hold, so a straggler planned *after* the
    /// dispatchers' shutdown drains can never strand its waiters — their
    /// dropped senders disconnect the receivers, which degrade to the
    /// local fallback.
    live_workers: AtomicU64,
    /// Dispatchers still running; the last one out sends the worker
    /// shutdown sentinels (after every shard's final drain is enqueued).
    live_dispatchers: AtomicU64,
    telemetry: Telemetry,
    /// The anomaly flight recorder (events, snapshots, bundle triggers).
    flight: FlightRecorder,
}

/// The running service. Cloneable via `Arc`; dropping the last handle
/// flushes the queues and joins every thread.
pub struct ErService {
    inner: Arc<Inner>,
    dispatchers: Vec<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ErService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ErService")
            .field("config", &self.inner.config)
            .field("pool_size", &self.inner.pool.len())
            .finish_non_exhaustive()
    }
}

impl ErService {
    /// Starts the service.
    ///
    /// * `api` — any chat endpoint (in-process simulator, HTTP client, a
    ///   real provider implementation).
    /// * `bootstrap` — labeled pairs used two ways: as the demonstration
    ///   pool for batch prompts (labeling priced per selected demo) and
    ///   as training data for the logistic fallback matcher.
    ///
    /// # Panics
    /// Panics when `bootstrap` is empty or `batch_size`/`workers` is zero
    /// — configuration bugs, not runtime conditions.
    pub fn start(
        api: Arc<dyn ChatApi>,
        bootstrap: Vec<LabeledPair>,
        config: ServiceConfig,
    ) -> Self {
        assert!(!bootstrap.is_empty(), "bootstrap pool must be non-empty");
        assert!(config.batch_size > 0, "batch size must be positive");
        assert!(config.workers > 0, "worker count must be positive");

        let xs: Vec<Vec<f64>> = bootstrap.iter().map(|p| base_features(&p.pair)).collect();
        let ys: Vec<bool> = bootstrap.iter().map(|p| p.label.is_match()).collect();
        let fallback = LogisticModel::train(
            &xs,
            &ys,
            TrainConfig { seed: config.seed, ..TrainConfig::default() },
        );

        // Serving accepts questions under arbitrary client schemas, which
        // may differ from the pool's — so planning must use the
        // semantics-based extractor (fixed-dimension embeddings of the
        // serialized pair) rather than the structure-aware one, whose
        // vector length is the schema arity.
        let plan_template = BatchPlanConfig {
            batch_size: config.batch_size,
            seed: config.seed,
            extractor: ExtractorKind::Semantic,
            ..BatchPlanConfig::default()
        };
        let pool_refs: Vec<&LabeledPair> = bootstrap.iter().collect();
        let prepared_pool =
            PreparedPool::prepare(&pool_refs, ExtractorKind::Semantic, DistanceKind::Euclidean);
        drop(pool_refs);

        let telemetry = Telemetry::new(config.telemetry, config.trace_capacity);
        let flight = FlightRecorder::new(config.telemetry, config.flight_dir.clone());

        // Recovery replay runs to completion here, before any thread
        // starts or the HTTP front end can bind — externally the service
        // is never observable mid-recovery.
        let (durable, recovery, recovered_answers) = match &config.wal {
            Some(wal_config) => {
                let (log, replayed) =
                    DurableLog::open(wal_config, &telemetry).unwrap_or_else(|e| {
                        panic!(
                            "er-service: cannot open WAL at {}: {e}",
                            wal_config.dir.display()
                        )
                    });
                // The same conservation rules the stress suite asserts,
                // applied to the replayed history. Violations mean a
                // corrupt or foreign log; surface them loudly — and leave
                // a flight-recorder bundle behind, since a service that
                // starts from corrupt history is exactly the situation a
                // debug artifact exists for.
                let violations = replayed.report.conservation_violations(config.budget);
                for violation in &violations {
                    eprintln!("er-service: recovery conservation violation: {violation}");
                    flight.event("recovery_violation", violation.clone());
                }
                if !violations.is_empty() && flight.should_trigger("recovery_violation") {
                    // The pipeline is not assembled yet, so this bundle
                    // holds what exists at this point: the violations and
                    // the recovery report.
                    let listed: Vec<String> = violations.iter().map(|v| json_string(v)).collect();
                    let bundle = format!(
                        "{{\"reason\":\"recovery_violation\",\"violations\":[{}],\"records_replayed\":{},\"open_reservations\":{}}}",
                        listed.join(","),
                        replayed.report.records_replayed,
                        replayed.report.open_reservations
                    );
                    flight.write_bundle("recovery_violation", &bundle);
                }
                debug_assert!(violations.is_empty(), "recovery violated conservation");
                (Some(log), Some(replayed.report), replayed.answers)
            }
            None => (None, None, Vec::new()),
        };

        // Per-shard serving state. Each shard gets an equal slice of the
        // cache budget (the LRU bound — at least one entry each), its own
        // planner seeded from the shared prepared pool, and a budget
        // lease (pass-through unless `lease_chunk` is set).
        let router = ShardRouter::new(config.shards);
        let per_shard_cap = (config.cache_capacity / config.shards).max(1);
        let shards: Vec<ShardState> = (0..config.shards)
            .map(|i| ShardState {
                queue: Mutex::new(QueueState {
                    pending: Vec::new(),
                    oldest: None,
                    straggler_deadline: None,
                    stopping: false,
                }),
                queue_cond: Condvar::new(),
                planner: Mutex::new(Planner {
                    state: PlanState::from_prepared(prepared_pool.clone(), plan_template)
                        .with_max_delta_fraction(config.max_plan_delta_fraction),
                    queued: HashMap::new(),
                }),
                in_flight: Mutex::new(HashMap::new()),
                cache: AnswerCache::new(config.cache_enabled, per_shard_cap).with_metrics(
                    Arc::clone(&telemetry.cache_hits),
                    Arc::clone(&telemetry.cache_misses),
                    Arc::clone(&telemetry.cache_entries),
                    Arc::clone(&telemetry.cache_evictions),
                ),
                lease: ShardLease::new(config.lease_chunk),
                depth_peak: AtomicU64::new(0),
                tel: telemetry.shard_handles(i),
            })
            .collect();
        // Replay fans each recovered answer out to its *current* owner:
        // routing is a pure repartition across power-of-two counts, so a
        // log written under 8 shards restores cleanly into 2. The LRU cap
        // applies during the fill exactly as it does online.
        for (fp, label) in recovered_answers {
            shards[router.route(fp)].cache.insert(fp, label);
        }
        let ledger = SharedCostLedger::new();
        if let Some(report) = &recovery {
            // Replayed spend counts against the budget exactly as if this
            // process had spent it: no answer is ever bought twice.
            ledger.merge(&report.settled);
        }
        let governor = CostGovernor::new(ledger, config.budget)
            .with_metrics(
                Arc::clone(&telemetry.budget_denials),
                Arc::clone(&telemetry.governor_refunds),
                Arc::clone(&telemetry.governor_reserve_us),
                Arc::clone(&telemetry.governor_settle_us),
                Arc::clone(&telemetry.governor_reserved_micros),
            )
            .with_journal(durable.clone());
        let breaker = Breaker::new(config.breaker_threshold, config.breaker_cooldown).with_metrics(
            Arc::clone(&telemetry.breaker_trips),
            Arc::clone(&telemetry.breaker_short_circuits),
            Arc::clone(&telemetry.breaker_state),
        );
        let inner = Arc::new(Inner {
            plan_template,
            api,
            prepared_pool,
            pool: bootstrap,
            labeled: Mutex::new(HashSet::new()),
            fallback,
            governor,
            durable,
            recovery,
            breaker,
            router,
            telemetry,
            flight,
            live_workers: AtomicU64::new(config.workers as u64),
            live_dispatchers: AtomicU64::new(shards.len() as u64),
            shards,
            config,
        });

        let (work_tx, work_rx) = channel::<WorkItem>();
        let work_rx = Arc::new(Mutex::new(work_rx));

        let workers = (0..inner.config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                let work_rx = Arc::clone(&work_rx);
                let work_tx = work_tx.clone();
                std::thread::spawn(move || worker_loop(&inner, &work_rx, &work_tx))
            })
            .collect();

        let dispatchers = (0..inner.config.shards)
            .map(|si| {
                let inner = Arc::clone(&inner);
                let work_tx = work_tx.clone();
                std::thread::spawn(move || dispatcher_loop(&inner, si, work_tx))
            })
            .collect();

        Self { inner, dispatchers, workers }
    }

    /// Resolves one pair question, blocking until a decision is available
    /// (cache hits return immediately; queue misses wait for their batch).
    ///
    /// This call owns the question's lifecycle span: it opens it, and it
    /// is the only place that finishes it (terminal stage `answered`) —
    /// so every span reaches a terminal stage exactly once, on every
    /// path a decision can take.
    pub fn submit(&self, pair: &EntityPair) -> MatchDecision {
        match submit_inner(&self.inner, pair, true) {
            SubmitOutcome::Decided(decision) => decision,
            // Blocking admission never sheds: a full queue degrades to the
            // local fallback inside `submit_inner` instead.
            SubmitOutcome::Shed { .. } => unreachable!("blocking submit cannot shed"),
        }
    }

    /// Non-blocking admission: like [`ErService::submit`] but when the
    /// owning shard's pending queue is at `queue_capacity` the question
    /// is *shed* — the caller gets [`SubmitOutcome::Shed`] with a retry
    /// hint instead of a decision, and no queue slot is consumed. The
    /// HTTP front end maps this to `429` + `Retry-After`.
    pub fn try_submit(&self, pair: &EntityPair) -> SubmitOutcome {
        submit_inner(&self.inner, pair, false)
    }

    /// A point-in-time statistics snapshot (the `/stats` payload).
    ///
    /// A thin view over the telemetry registry: everything here reads
    /// lock-free handles or folds histogram shards — a slow or hammering
    /// scraper can never stall `submit` or the flush path.
    pub fn stats(&self) -> ServiceStats {
        stats_of(&self.inner)
    }

    /// The readiness/durability report (the `GET /healthz` payload):
    /// whether journaling is still healthy, how stale the last fsync is,
    /// the breaker's state, and what startup recovery replayed.
    pub fn health(&self) -> HealthReport {
        health_of(&self.inner)
    }

    /// The service's telemetry bundle (registry + trace log).
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// The anomaly flight recorder (events, snapshots, bundles).
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }

    /// Renders every metric family in Prometheus text exposition format,
    /// SLO burn-rate gauges refreshed first (the `GET /metrics` payload).
    pub fn render_metrics(&self) -> String {
        self.inner.telemetry.render_prometheus()
    }

    /// The most recent `n` completed lifecycle spans as JSON, newest
    /// first (the `GET /trace?n=` payload). `n` is clamped to the trace
    /// ring's capacity — asking for more than the ring can hold is a
    /// client mistake, not an allocation request.
    pub fn trace_json(&self, n: usize) -> String {
        let n = n.min(self.inner.config.trace_capacity.max(1));
        self.inner.telemetry.trace.recent_json(n)
    }

    /// The assembled cross-service span tree for one trace id (the
    /// `GET /trace?id=` payload), or `None` when the id matches no
    /// retained span.
    ///
    /// When the question was answered by an LLM call that a *different*
    /// trace paid for (a coalesced duplicate), the tree carries a
    /// `shared_llm_trace` reference instead of the child spans — each
    /// downstream span is attributed to exactly one trace, the one that
    /// carried the traceparent header.
    pub fn trace_tree_json(&self, id: u64) -> Option<String> {
        let inner = &*self.inner;
        let span = inner.telemetry.trace.find(id)?;
        let shared_primary = span
            .events
            .iter()
            .find(|e| e.stage == "llm_shared")
            .and_then(|e| e.detail.as_ref())
            .and_then(|d| d.parse::<u64>().ok());
        let mut out = String::from("{\"span\":");
        out.push_str(&obs::span_json(&span));
        match shared_primary {
            Some(primary) => {
                out.push_str(&format!(",\"shared_llm_trace\":{primary},\"children\":[]"));
            }
            None => {
                let children = inner
                    .api
                    .trace_children(id)
                    .unwrap_or_else(|| "[]".to_owned());
                out.push_str(&format!(",\"children\":{children}"));
            }
        }
        out.push('}');
        Some(out)
    }

    /// Every SLO's multi-window burn-rate status as JSON (the `GET /slo`
    /// payload).
    pub fn slo_json(&self) -> String {
        self.inner.telemetry.slo_json()
    }

    /// Assembles the flight-recorder debug bundle (the
    /// `GET /debug/bundle` payload; also what triggers write to disk).
    pub fn debug_bundle_json(&self, reason: &str) -> String {
        assemble_bundle(&self.inner, reason)
    }

    /// The shared cost ledger (for tests and embedding harnesses).
    pub fn ledger(&self) -> &SharedCostLedger {
        self.inner.governor.ledger()
    }

    /// Hands every shard's unspent lease balance back to the global pool.
    ///
    /// A no-op in pass-through mode (`lease_chunk == 0`, the default,
    /// where leases never hold budget). With chunked leases, quiesce-time
    /// conservation (`remaining + spent == budget`) only holds after this
    /// runs — buffered-but-unspent budget otherwise still counts as
    /// reserved. Safe to call at any time: a racing batch that finds its
    /// lease drained simply refills on its next reserve.
    pub fn return_leases(&self) {
        for shard in &self.inner.shards {
            self.inner.governor.return_lease(&shard.lease);
        }
    }
}

/// The `/stats` snapshot, assembled from `inner` so worker threads (the
/// flight recorder's periodic snapshots) can build it too.
fn stats_of(inner: &Inner) -> ServiceStats {
    let tel = &inner.telemetry;
    let ledger = inner.governor.ledger().snapshot();
    // Recovery numbers come from the report, not the gauges, so they
    // stay visible with telemetry disabled.
    let recovery = inner.recovery.clone().unwrap_or_default();
    let plan_full = tel.plans_full.get();
    let plan_incremental = tel.plans_incremental.get();
    let mut plan_wall = tel.plan_full_us.snapshot();
    plan_wall.merge(&tel.plan_incremental_us.snapshot());
    let mut answer = tel.answer_cache_us.snapshot();
    answer.merge(&tel.answer_llm_us.snapshot());
    answer.merge(&tel.answer_fallback_us.snapshot());
    // Like the recovery numbers, the index counters are process-wide
    // (not gauge reads), so they stay visible with telemetry off.
    let index = embed::index::stats();
    let index_query = tel.index_query_us.snapshot();
    let lock_hold = tel.planner_lock_hold_us.snapshot();
    let shed_total: u64 = inner.shards.iter().map(|s| s.tel.shed.get()).sum();
    let queue_depth_peak = inner
        .shards
        .iter()
        .map(|s| s.depth_peak.load(Ordering::Relaxed))
        .max()
        .unwrap_or(0);
    let lease_refills: u64 = inner.shards.iter().map(|s| s.lease.refills()).sum();
    ServiceStats {
        submitted: tel.submitted.get(),
        plans: plan_full + plan_incremental,
        plan_full,
        plan_incremental,
        plan_last_inserted: tel.plan_last_inserted.get() as u64,
        plan_last_retired: tel.plan_last_retired.get() as u64,
        plan_last_us: tel.plan_last_us.get() as u64,
        plan_avg_us: plan_wall.mean(),
        plan_p50_us: plan_wall.quantile(0.5),
        plan_p99_us: plan_wall.quantile(0.99),
        answer_p50_us: answer.quantile(0.5),
        answer_p99_us: answer.quantile(0.99),
        cache_hits: tel.cache_hits.get(),
        cache_misses: tel.cache_misses.get(),
        cache_entries: tel.cache_entries.get() as u64,
        coalesced_duplicates: tel.coalesced.get(),
        llm_answered: tel.llm_answered.get(),
        fallback_answered: tel.fallback_answered.get(),
        batches_flushed: tel.batches_flushed.get(),
        retries: tel.retries.get(),
        api_calls: ledger.api_calls,
        prompt_tokens: ledger.prompt_tokens.get(),
        completion_tokens: ledger.completion_tokens.get(),
        demos_labeled: ledger.pairs_labeled,
        api_micros: ledger.api.micros(),
        labeling_micros: ledger.labeling.micros(),
        spent_micros: ledger.total().micros(),
        budget_micros: inner.governor.budget().micros(),
        remaining_micros: inner.governor.remaining().micros(),
        budget_denials: inner.governor.denials(),
        wal_enabled: inner.durable.is_some(),
        wal_appends: tel.wal_appends.get(),
        wal_append_errors: tel.wal_append_errors.get(),
        recovery_records_replayed: recovery.records_replayed,
        recovery_truncated_bytes: recovery.truncated_bytes,
        recovery_answers_restored: recovery.answers_restored,
        recovery_open_reservations: recovery.open_reservations,
        governor_refunds: inner.governor.refunds(),
        breaker_trips: inner.breaker.trips(),
        breaker_state: inner.breaker.state_code(),
        index_builds: index.builds,
        index_queries: index.queries,
        index_pruned_bp: (index.pruned_fraction() * 10_000.0) as u64,
        index_query_p50_us: index_query.quantile(0.5),
        index_query_p99_us: index_query.quantile(0.99),
        shards: inner.config.shards as u64,
        shed_total,
        queue_depth_peak,
        planner_lock_hold_p50_us: lock_hold.quantile(0.5),
        planner_lock_hold_p99_us: lock_hold.quantile(0.99),
        cache_evictions: tel.cache_evictions.get(),
        lease_refills,
    }
}

/// The `/healthz` report, assembled from `inner` (see [`stats_of`]).
fn health_of(inner: &Inner) -> HealthReport {
    let recovery = inner.recovery.clone().unwrap_or_default();
    let (status, last_sync_age_ms, unsynced, total_bytes) = match &inner.durable {
        Some(durable) => {
            let wal = durable.status();
            let degraded = durable.failed() || wal.wedged;
            (
                if degraded { "degraded" } else { "serving" },
                wal.last_sync_age
                    .map_or(-1, |age| i64::try_from(age.as_millis()).unwrap_or(i64::MAX)),
                wal.unsynced_appends,
                wal.total_bytes,
            )
        }
        None => ("serving", -1, 0, 0),
    };
    // Backpressure: any shard's pending queue at or past half its
    // admission bound. A cheap peek per shard — scrapers polling
    // `/healthz` learn the service is near shedding before 429s start.
    let capacity = inner.config.queue_capacity;
    let backpressure = capacity > 0
        && inner
            .shards
            .iter()
            .any(|s| lock(&s.queue).pending.len() >= (capacity / 2).max(1));
    HealthReport {
        status: status.to_owned(),
        wal_enabled: inner.durable.is_some(),
        wal_last_sync_age_ms: last_sync_age_ms,
        wal_unsynced_appends: unsynced,
        wal_total_bytes: total_bytes,
        breaker: inner.breaker.state_name().to_owned(),
        recovery_records_replayed: recovery.records_replayed,
        recovery_truncated_bytes: recovery.truncated_bytes,
        recovery_answers_restored: recovery.answers_restored,
        recovery_open_reservations: recovery.open_reservations,
        shards: inner.config.shards as u64,
        shed_total: inner.shards.iter().map(|s| s.tel.shed.get()).sum(),
        backpressure,
    }
}

/// Records the per-answer SLO signals (latency, availability). Gated on
/// the telemetry switch like every metric handle.
fn record_answer_slos(inner: &Inner, latency: Duration, source: DecisionSource) {
    let tel = &inner.telemetry;
    if !tel.is_enabled() {
        return;
    }
    let latency_us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
    tel.slo_latency
        .record(latency_us <= inner.config.slo_latency_us);
    tel.slo_availability
        .record(source != DecisionSource::Fallback);
}

/// Minimal JSON string quoting for bundle fields assembled by hand.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Assembles the self-contained debug bundle: what happened (reason +
/// recent events), what the system looked like (stats, health, SLO
/// windows, snapshots), and what was in flight (recent spans).
fn assemble_bundle(inner: &Inner, reason: &str) -> String {
    let stats = serde_json::to_string(&stats_of(inner)).unwrap_or_else(|_| "{}".to_owned());
    let health = serde_json::to_string(&health_of(inner)).unwrap_or_else(|_| "{}".to_owned());
    format!(
        "{{\"reason\":{},\"breaker\":{},\"health\":{health},\"stats\":{stats},\"slo\":{},\"recent_traces\":{},\"events\":{},\"snapshots\":{}}}",
        json_string(reason),
        json_string(inner.breaker.state_name()),
        inner.telemetry.slo_json(),
        inner.telemetry.trace.recent_json(32),
        inner.flight.events_json(),
        inner.flight.snapshots_json(),
    )
}

/// Records an anomaly event and, unless the reason fired recently, dumps
/// a debug bundle to the flight directory.
fn trigger_bundle(inner: &Inner, reason: &'static str, detail: String) {
    inner.flight.event(reason, detail);
    if inner.flight.should_trigger(reason) {
        let bundle = assemble_bundle(inner, reason);
        inner.flight.write_bundle(reason, &bundle);
    }
}

impl Drop for ErService {
    fn drop(&mut self) {
        for shard in &self.inner.shards {
            let mut queue = lock(&shard.queue);
            queue.stopping = true;
            shard.queue_cond.notify_all();
        }
        for handle in self.dispatchers.drain(..) {
            let _ = handle.join();
        }
        // Every dispatcher flushed what its shard still held; the last
        // one out sent one shutdown sentinel per worker.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn fallback_decision(inner: &Inner, fp: PairFingerprint, pair: &EntityPair) -> MatchDecision {
    let features = base_features(pair);
    let is_match = if features.len() == inner.fallback.weights().len() {
        inner.fallback.predict(&features)
    } else {
        // The question's schema differs from the bootstrap pool's, so
        // the trained weights do not align with these features. Decide
        // on the schema-agnostic aggregate similarity instead (the last
        // feature: mean per-attribute similarity in [0, 1]).
        features.last().copied().unwrap_or(0.0) >= 0.5
    };
    let label = MatchLabel::from_bool(is_match);
    inner.telemetry.fallback_answered.inc();
    // Deliberately NOT cached: a denial can be transient (another
    // worker's conservative reservation in flight), and recomputing the
    // logistic verdict is free — caching it would pin lower-quality
    // answers on hot pairs forever.
    MatchDecision { label, source: DecisionSource::Fallback, fingerprint: fp, trace_id: 0 }
}

/// One pair question end to end: route to the owning shard, try its
/// cache, then enqueue (or shed) and wait for the decision.
///
/// This is the only submit path. It owns the question's lifecycle span:
/// it opens it, and it is the only place that finishes it — terminal
/// stage `answered` on every decision path, `shed` when non-blocking
/// admission rejects the question outright.
///
/// `block_on_shed` selects the admission policy for a full queue:
/// `true` (the blocking [`ErService::submit`]) degrades to the local
/// fallback so the caller always gets *an* answer; `false`
/// ([`ErService::try_submit`]) returns [`SubmitOutcome::Shed`] and lets
/// the client retry — the load-shedding contract the HTTP front end
/// exposes as `429`.
fn submit_inner(inner: &Inner, pair: &EntityPair, block_on_shed: bool) -> SubmitOutcome {
    let tel = &inner.telemetry;
    tel.submitted.inc();
    let started = Instant::now();
    let fp = pair_fingerprint(pair);
    let shard = &inner.shards[inner.router.route(fp)];
    let trace = tel.trace.begin(fp.0, "submitted");
    if let Some(label) = shard.cache.get(fp) {
        let latency = started.elapsed();
        tel.answer_cache_us
            .record_duration_us_with_exemplar(latency, trace);
        record_answer_slos(inner, latency, DecisionSource::Cache);
        tel.trace
            .finish(trace, "answered", Some("cache".to_owned()));
        return SubmitOutcome::Decided(MatchDecision {
            label,
            source: DecisionSource::Cache,
            fingerprint: fp,
            trace_id: trace,
        });
    }

    let answer_via_local = |detail: &str| {
        let decision = fallback_decision(inner, fp, pair);
        let latency = started.elapsed();
        tel.answer_fallback_us
            .record_duration_us_with_exemplar(latency, trace);
        record_answer_slos(inner, latency, DecisionSource::Fallback);
        tel.trace.finish(trace, "answered", Some(detail.to_owned()));
        SubmitOutcome::Decided(MatchDecision { trace_id: trace, ..decision })
    };

    let (tx, rx): (Sender<MatchDecision>, Receiver<MatchDecision>) = channel();
    {
        let mut queue = lock(&shard.queue);
        if queue.stopping {
            drop(queue);
            return answer_via_local("fallback");
        }
        let capacity = inner.config.queue_capacity;
        if capacity > 0 && queue.pending.len() >= capacity {
            // Admission control: the shard is saturated. Shedding here —
            // before the question consumes a queue slot, a planner epoch
            // or budget — is what keeps the queue bounded under overload.
            drop(queue);
            shard.tel.shed.inc();
            if block_on_shed {
                return answer_via_local("fallback_shed");
            }
            // One flush deadline is how long the shard needs to drain a
            // generation — the honest retry hint.
            let retry_after_ms =
                u64::try_from(inner.config.flush_deadline.as_millis().max(1)).unwrap_or(u64::MAX);
            tel.trace
                .finish(trace, "shed", Some("queue_full".to_owned()));
            return SubmitOutcome::Shed { retry_after_ms };
        }
        if queue.pending.is_empty() {
            queue.oldest = Some(Instant::now());
        }
        queue.pending.push(Pending {
            fp,
            pair: pair.clone(),
            waiter: Waiter { tx, trace },
            enqueued: Instant::now(),
        });
        let depth = queue.pending.len() as u64;
        // The global gauge sums shards (add-deltas: every push is +1,
        // every drain is -n); the per-shard gauge is exact.
        tel.queue_depth.add(1);
        shard.tel.queue_depth.set(depth as i64);
        shard.depth_peak.fetch_max(depth, Ordering::Relaxed);
        shard.queue_cond.notify_all();
    }
    tel.trace.stamp(trace, "enqueued");
    // A dead dispatcher/worker (disconnected sender) degrades to the
    // fallback instead of hanging the caller.
    let decision = rx
        .recv()
        .unwrap_or_else(|_| fallback_decision(inner, fp, pair));
    let latency = started.elapsed();
    match decision.source {
        DecisionSource::Cache => tel
            .answer_cache_us
            .record_duration_us_with_exemplar(latency, trace),
        DecisionSource::Llm => tel
            .answer_llm_us
            .record_duration_us_with_exemplar(latency, trace),
        DecisionSource::Fallback => tel
            .answer_fallback_us
            .record_duration_us_with_exemplar(latency, trace),
    }
    record_answer_slos(inner, latency, decision.source);
    tel.trace
        .finish(trace, "answered", Some(decision.source.name().to_owned()));
    SubmitOutcome::Decided(MatchDecision { trace_id: trace, ..decision })
}

// ---------------------------------------------------------------------
// Dispatchers: one coalescing-queue flush loop per shard
// ---------------------------------------------------------------------

fn dispatcher_loop(inner: &Inner, si: usize, work_tx: Sender<WorkItem>) {
    let batch_size = inner.config.batch_size;
    let deadline = inner.config.flush_deadline;
    let shard = &inner.shards[si];
    loop {
        // A drain is *urgent* when a deadline forced it (oldest pending
        // question, oldest planner-held straggler, or shutdown): the plan
        // must then dispatch every batch, partial or not. A size-triggered
        // drain may instead hold partial batches for the next epoch.
        let (drained, urgent, flush_stragglers): (Vec<Pending>, bool, bool) = {
            let mut queue = lock(&shard.queue);
            let urgent = loop {
                if queue.stopping {
                    break true;
                }
                let now = Instant::now();
                let pending_deadline = queue.oldest.map(|oldest| oldest + deadline);
                let overdue = pending_deadline.is_some_and(|t| now >= t)
                    || queue.straggler_deadline.is_some_and(|t| now >= t);
                if overdue {
                    break true;
                }
                if queue.pending.len() >= batch_size {
                    break false;
                }
                let next = match (pending_deadline, queue.straggler_deadline) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                match next {
                    None => {
                        queue = shard
                            .queue_cond
                            .wait(queue)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    Some(t) => {
                        let (q, _) = shard
                            .queue_cond
                            .wait_timeout(queue, t - now)
                            .unwrap_or_else(PoisonError::into_inner);
                        queue = q;
                    }
                }
            };
            let flush_stragglers = urgent && queue.straggler_deadline.is_some();
            if queue.stopping && queue.pending.is_empty() && queue.straggler_deadline.is_none() {
                drop(queue);
                // The *last* dispatcher out sends the worker sentinels:
                // every shard's final drain is already in the channel by
                // then (each dispatcher enqueues its last Plan before
                // reaching this decrement), and channel order puts the
                // sentinels after them. One sentinel per worker; each
                // worker consumes exactly one and exits.
                if inner.live_dispatchers.fetch_sub(1, Ordering::AcqRel) == 1 {
                    for _ in 0..inner.config.workers {
                        let _ = work_tx.send(WorkItem::Shutdown);
                    }
                }
                return;
            }
            queue.oldest = None;
            // Disarm the straggler timer before handing off; the planner
            // re-arms it (under this lock) if held questions remain.
            queue.straggler_deadline = None;
            inner
                .telemetry
                .queue_depth
                .add(-(queue.pending.len() as i64));
            shard.tel.queue_depth.set(0);
            (std::mem::take(&mut queue.pending), urgent, flush_stragglers)
        };
        // Planning is O(flush²); it runs on the worker pool so the
        // dispatcher returns to its wait loop immediately and later
        // arrivals are not stalled past their deadline.
        if (!drained.is_empty() || flush_stragglers)
            && work_tx
                .send(WorkItem::Plan { shard: si, drained, urgent })
                .is_err()
        {
            return; // workers gone
        }
    }
}

/// Dedupes one drained queue generation into the epoch-tracked planner,
/// re-plans (incrementally when the delta allows), and dispatches batches.
///
/// Dispatch policy: full batches always dispatch; partial batches
/// dispatch only on an `urgent` flush (deadline or shutdown) and are
/// otherwise *held* in the planner as next epoch's standing pool — the
/// paper's batch economics improve when a straggler waits (bounded by the
/// flush deadline) for co-batched traffic instead of flying alone.
/// Drop-guard that records how long one flush held a shard's planner
/// lock, into both the service-wide histogram (the bench's headline
/// contention metric) and the shard's own `er_shard_lock_hold_us`.
struct HoldTimer<'a> {
    started: Instant,
    global: &'a obs::Histogram,
    shard: &'a obs::Histogram,
}

impl Drop for HoldTimer<'_> {
    fn drop(&mut self) {
        let us = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.global.record(us);
        self.shard.record(us);
    }
}

fn flush(
    inner: &Inner,
    si: usize,
    drained: Vec<Pending>,
    urgent: bool,
    work_tx: &Sender<WorkItem>,
) {
    let tel = &inner.telemetry;
    let shard = &inner.shards[si];
    // Flight recorder heartbeat: at most once a second (while traffic
    // flows) snapshot the stats into the bounded ring and check the SLO
    // windows — a fast burn on both windows dumps a bundle.
    if inner.flight.snapshot_due() {
        if let Ok(json) = serde_json::to_string(&stats_of(inner)) {
            inner.flight.snapshot(json);
        }
        if let Some(objective) = tel.any_fast_burn() {
            trigger_bundle(
                inner,
                "slo_fast_burn",
                format!("objective {objective} burning on both windows"),
            );
        }
    }
    // Dedupe by fingerprint. Four ways a question avoids its own LLM
    // slot: answered into the cache while it sat in the queue, identical
    // to a question an executing batch is already asking (attach to its
    // in-flight entry), identical to another question in this flush, or
    // identical to a question the planner already holds (attach below).
    // Each coalesce is counted *before* its waiter can observe a
    // decision (before the send / before attaching to an entry another
    // thread may resolve), so the accounting identity `submitted =
    // hits + coalesced + answered` holds at any quiesce point — a
    // deferred bulk add here used to lose counts to a stats read racing
    // the tail of the flush.
    let mut waiters: HashMap<PairFingerprint, Vec<Waiter>> = HashMap::new();
    let mut unique: Vec<(PairFingerprint, EntityPair, Instant)> = Vec::new();
    for item in drained {
        tel.queue_wait_us
            .record_duration_us(item.enqueued.elapsed());
        if let Some(label) = shard.cache.peek(item.fp) {
            tel.coalesced.inc();
            tel.trace
                .stamp_with(item.waiter.trace, "coalesced", "cache".to_owned());
            let _ = item.waiter.tx.send(MatchDecision {
                label,
                source: DecisionSource::Cache,
                fingerprint: item.fp,
                trace_id: 0,
            });
            continue;
        }
        {
            let mut in_flight = lock(&shard.in_flight);
            if let Some(attached) = in_flight.get_mut(&item.fp) {
                tel.coalesced.inc();
                tel.trace
                    .stamp_with(item.waiter.trace, "coalesced", "in_flight".to_owned());
                attached.push(item.waiter);
                continue;
            }
        }
        match waiters.entry(item.fp) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                tel.coalesced.inc();
                tel.trace
                    .stamp_with(item.waiter.trace, "coalesced", "duplicate".to_owned());
                e.get_mut().push(item.waiter);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(vec![item.waiter]);
                // The queue drains in arrival order, so the first item
                // seen for a fingerprint carries its earliest arrival.
                unique.push((item.fp, item.pair, item.enqueued));
            }
        }
    }

    let mut planner = lock(&shard.planner);
    // Measures how long this flush keeps every other flush (and the
    // dispatch path) waiting; drop-guard so early returns count too.
    // Recorded both service-wide and per shard: the bench's contention
    // story is exactly this histogram shrinking as shards increase.
    let _lock_hold = HoldTimer {
        started: Instant::now(),
        global: &tel.planner_lock_hold_us,
        shard: &shard.tel.lock_hold_us,
    };
    // The plan timer covers delta application too (per-insert feature
    // extraction and cache-extension scans are planning work the old
    // from-scratch path paid inside plan_with_prepared_pool), so the
    // plan_last_us/plan_avg_us gauges keep their meaning: the planning
    // cost of this flush.
    let plan_started = Instant::now();
    // Index counters are process-wide; deltas taken under the planner
    // lock attribute exactly this flush's builds and queries (the index
    // is only touched by planning, which this lock serializes).
    let idx_before = embed::index::stats();
    // Apply the insertion half of the delta: brand-new questions enter
    // the plan state; duplicates of questions the planner already holds
    // attach their waiters. The in-flight check repeats here *under the
    // planner lock*: a concurrent flush dispatches (and registers) its
    // batches while holding this lock, so the lock-free check above can
    // race a question straight out of `queued` into `in_flight` — without
    // the re-check both flushes would buy the question an LLM slot.
    for (fp, pair, enqueued) in unique {
        let senders = waiters.remove(&fp).unwrap_or_default();
        if let Some(held) = planner.queued.get_mut(&fp) {
            // Only the primary item coalesces here; its within-flush
            // duplicates were already counted in the dedupe loop.
            tel.coalesced.inc();
            for w in &senders {
                tel.trace
                    .stamp_with(w.trace, "coalesced", "held".to_owned());
            }
            held.waiters.extend(senders);
            continue;
        }
        {
            let mut in_flight = lock(&shard.in_flight);
            if let Some(attached) = in_flight.get_mut(&fp) {
                tel.coalesced.inc();
                for w in &senders {
                    tel.trace
                        .stamp_with(w.trace, "coalesced", "in_flight".to_owned());
                }
                attached.extend(senders);
                continue;
            }
        }
        planner.state.insert(fp.0, &pair);
        planner.queued.insert(
            fp,
            QueuedQuestion { pair, waiters: senders, since: enqueued },
        );
    }
    if planner.queued.is_empty() {
        return;
    }

    // Arrival-order independence: the epoch seed folds over the active
    // fingerprints in sorted order, so a plan depends only on *what* is
    // pending, not on thread scheduling.
    let mut fps: Vec<PairFingerprint> = planner.queued.keys().copied().collect();
    fps.sort_unstable();
    let flush_seed = fps
        .iter()
        .fold(inner.config.seed, |acc, fp| acc.rotate_left(7) ^ fp.0);

    let epoch = planner.state.plan(flush_seed);
    let plan_us = u64::try_from(plan_started.elapsed().as_micros()).unwrap_or(u64::MAX);
    let plan_kind = match epoch.kind {
        PlanKind::Full => {
            tel.plans_full.inc();
            tel.plan_full_us.record(plan_us);
            "full"
        }
        PlanKind::Incremental => {
            tel.plans_incremental.inc();
            tel.plan_incremental_us.record(plan_us);
            "incremental"
        }
    };
    tel.plan_last_inserted.set(epoch.inserted as i64);
    tel.plan_last_retired.set(epoch.retired as i64);
    tel.plan_last_us.set(plan_us as i64);
    let idx = embed::index::stats();
    let idx_delta = idx.delta_since(&idx_before);
    tel.index_builds.add(idx_delta.builds);
    if let Some(per_query_ns) = idx_delta.query_ns.checked_div(idx_delta.queries) {
        tel.index_query_us.record(per_query_ns / 1_000);
    }
    tel.index_pruned_bp
        .set((idx.pruned_fraction() * 10_000.0) as i64);

    for (bi, batch) in epoch.plan.batches.iter().enumerate() {
        if !urgent && batch.len() < inner.config.batch_size {
            continue; // held for the next epoch
        }
        let questions: Vec<(PairFingerprint, EntityPair, Vec<Waiter>)> = batch
            .iter()
            .map(|&qi| {
                let fp = PairFingerprint(epoch.keys[qi]);
                let queued = planner
                    .queued
                    .remove(&fp)
                    .expect("planned question is held by the planner");
                planner.state.retire(fp.0);
                for w in &queued.waiters {
                    tel.trace
                        .stamp_with(w.trace, "planned", plan_kind.to_owned());
                    tel.trace.stamp(w.trace, "dispatched");
                }
                (fp, queued.pair, queued.waiters)
            })
            .collect();
        // Register the batch's questions as in flight *before* handing
        // it off, so duplicates in later flushes attach instead of
        // re-asking. Completion (or panic cleanup) removes the entries.
        let fps: Vec<PairFingerprint> = questions.iter().map(|(fp, _, _)| *fp).collect();
        {
            let mut in_flight = lock(&shard.in_flight);
            for fp in &fps {
                in_flight.entry(*fp).or_default();
            }
        }
        tel.batches_flushed.inc();
        let job = BatchJob {
            shard: si,
            questions,
            demo_indices: epoch.plan.demos_per_batch[bi].clone(),
            seed: flush_seed ^ ((bi as u64) << 16),
        };
        if work_tx.send(WorkItem::Batch(job)).is_err() {
            // Workers gone (shutdown): unregister and let the dropped
            // senders push the waiters onto the local fallback. Held
            // waiters drop with the planner when the service tears down.
            clear_in_flight(shard, &fps);
            return;
        }
    }

    // Re-arm the straggler timer for anything held back — under the
    // queue lock so the dispatcher's wait cannot miss the update, and
    // *before* releasing the planner lock so a concurrent flush cannot
    // interleave its own (newer) deadline between our computation and
    // our write. Lock order planner → queue matches the dispatch path.
    let straggler_deadline = planner
        .queued
        .values()
        .map(|q| q.since + inner.config.flush_deadline)
        .min();
    {
        let mut queue = lock(&shard.queue);
        queue.straggler_deadline = straggler_deadline;
        if straggler_deadline.is_some() {
            shard.queue_cond.notify_all();
        }
    }
    drop(planner);
}

/// Removes in-flight registrations, dropping any attached waiters (their
/// disconnected receivers degrade to the local fallback).
fn clear_in_flight(shard: &ShardState, fps: &[PairFingerprint]) {
    let mut in_flight = lock(&shard.in_flight);
    for fp in fps {
        in_flight.remove(fp);
    }
}

// ---------------------------------------------------------------------
// Workers: governed batch execution over the ChatApi
// ---------------------------------------------------------------------

fn worker_loop(inner: &Inner, work_rx: &Mutex<Receiver<WorkItem>>, work_tx: &Sender<WorkItem>) {
    loop {
        let item = {
            let rx = lock(work_rx);
            rx.recv()
        };
        match item {
            Ok(WorkItem::Plan { shard: si, drained, urgent }) => {
                // A panicking plan (e.g. a poisoned question) must not
                // take the worker down: containment drops the drained
                // senders, their waiters observe the disconnect and fall
                // back locally, and the pool keeps serving.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    flush(inner, si, drained, urgent, work_tx);
                }));
                if result.is_err() {
                    // The shard's planner may hold half-applied state and
                    // waiters whose questions will never dispatch: reset
                    // it (the other shards are untouched — containment is
                    // now per shard). Dropping the held waiters
                    // disconnects their receivers, which degrade to the
                    // local fallback.
                    let shard = &inner.shards[si];
                    let mut planner = lock(&shard.planner);
                    planner.queued.clear();
                    planner.state =
                        PlanState::from_prepared(inner.prepared_pool.clone(), inner.plan_template)
                            .with_max_delta_fraction(inner.config.max_plan_delta_fraction);
                    // Disarm the straggler timer *before* releasing the
                    // planner lock — the same ordering the flush path's
                    // re-arm uses — so this None cannot overwrite a
                    // deadline a concurrent healthy flush just armed.
                    lock(&shard.queue).straggler_deadline = None;
                    drop(planner);
                    eprintln!("er-service: flush planning panicked; affected requests fall back");
                }
            }
            Ok(WorkItem::Batch(job)) => {
                // Same containment for execution. The in-flight entries
                // are cleared on panic so attached waiters disconnect
                // (and fall back) instead of hanging; a reservation held
                // at the panic point is refunded by its drop guard as the
                // panic unwinds, so a dead worker cannot strand budget.
                let si = job.shard;
                let fps: Vec<PairFingerprint> =
                    job.questions.iter().map(|(fp, _, _)| *fp).collect();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute_job(inner, job);
                }));
                if result.is_err() {
                    clear_in_flight(&inner.shards[si], &fps);
                    eprintln!("er-service: batch execution panicked; affected requests fall back");
                }
            }
            Ok(WorkItem::Shutdown) | Err(_) => {
                // Plan items always precede the shutdown sentinels in the
                // channel, and a worker busy planning holds its sentinel
                // slot until it finishes — so when the *last* worker
                // exits, no flush can run anymore and whatever any
                // shard's planner still holds (partial batches planned
                // after that shard's final drain) would wait forever.
                // Drop those waiters now; their receivers disconnect and
                // the blocked submits degrade to the local fallback.
                if inner.live_workers.fetch_sub(1, Ordering::AcqRel) == 1 {
                    for shard in &inner.shards {
                        lock(&shard.planner).queued.clear();
                    }
                }
                return;
            }
        }
    }
}

fn execute_job(inner: &Inner, job: BatchJob) {
    let config = &inner.config;
    let tel = &inner.telemetry;
    let shard = &inner.shards[job.shard];
    // Circuit breaker: during an LLM outage every batch would burn its
    // full retry schedule before degrading. Once the breaker opens,
    // batches short-circuit straight to the logistic fallback — no
    // reservation, no retries — until a cooldown-spaced probe succeeds.
    if !inner.breaker.allow() {
        for (_, _, senders) in &job.questions {
            for w in senders {
                tel.trace.stamp(w.trace, "breaker_short_circuit");
            }
        }
        inner.flight.event(
            "breaker_short_circuit",
            format!("batch of {} routed to fallback", job.questions.len()),
        );
        answer_via_fallback(inner, &job);
        return;
    }
    let demos: Vec<&LabeledPair> = job.demo_indices.iter().map(|&d| &inner.pool[d]).collect();
    let questions: Vec<String> = job
        .questions
        .iter()
        .map(|(_, pair, _)| pair.serialize())
        .collect();
    let description = task_description(&config.domain);

    let prompt = build_batch_prompt(&description, &demos, &questions);
    let prompt_tokens = count_tokens(&prompt);

    // A prompt over the model's context window would trigger the
    // executor's recursive split-and-resend, whose cost the projection
    // below cannot bound. Serving never sends such a prompt: the batch
    // is answered locally instead, which keeps the budget cap hard.
    if prompt_tokens > config.model.profile().max_context_tokens {
        answer_via_fallback(inner, &job);
        return;
    }

    // Worst-case projection for the governor: full prompt at every retry,
    // plus a completion bound and labeling for any demo not yet paid
    // for. Answer length tracks question content (the model quotes
    // attribute names/values in its rationale), so the completion bound
    // is the questions' own token count plus a fixed per-question
    // allowance — not a flat constant a hostile question could exceed.
    // The not-yet-labeled check, the reservation and the marking happen
    // under one lock so a concurrent job sharing a demo cannot observe
    // it as labeled while this reservation later fails.
    let price = PriceTable::for_model(config.model);
    let attempts = u64::from(config.max_retries) + 1;
    let question_tokens: u64 = questions.iter().map(|q| count_tokens(q)).sum();
    let completion_bound = question_tokens + config.completion_allowance * questions.len() as u64;
    let api_projection =
        price.cost(TokenCount(prompt_tokens), TokenCount(completion_bound)) * attempts;

    let granted = {
        let mut labeled = lock(&inner.labeled);
        let newly: Vec<usize> = job
            .demo_indices
            .iter()
            .copied()
            .filter(|d| !labeled.contains(d))
            .collect();
        let projected = api_projection + LABEL_COST_PER_PAIR * newly.len() as u64;
        // Reserve against this shard's lease: pass-through to the global
        // pool by default, chunk-buffered when `lease_chunk` is set —
        // either way conservation holds globally (the lease is carved
        // out of the same reserved headroom).
        inner
            .governor
            .try_reserve_leased(&shard.lease, projected)
            .map(|guard| {
                labeled.extend(&newly);
                (guard, newly, projected)
            })
    };
    if tel.is_enabled() {
        tel.slo_budget.record(granted.is_some());
    }
    let Some((guard, newly_labeled, projected)) = granted else {
        // Over budget: answer locally, free of charge.
        inner.flight.event(
            "budget_denied",
            format!("batch of {} answered by fallback", job.questions.len()),
        );
        answer_via_fallback(inner, &job);
        return;
    };

    // The first traced waiter's id rides the batch's LLM calls as the
    // propagated traceparent: one batch, one downstream trace, no matter
    // how many coalesced waiters share the call. Everyone else's span
    // gets an `llm_shared` reference to this primary at resolution.
    let primary_trace = job
        .questions
        .iter()
        .flat_map(|(_, _, senders)| senders.iter())
        .map(|w| w.trace)
        .find(|&t| t != 0)
        .unwrap_or(0);
    let executor = Executor::new(inner.api.as_ref(), config.model, config.max_retries)
        .with_trace(primary_trace);
    let mut outcome = ExecutionOutcome::default();
    executor.run_batch(&description, &demos, &questions, job.seed, &mut outcome);
    outcome.ledger.record_labeling(newly_labeled.len() as u64);
    // Breaker verdict. The executor records an API call only when the
    // transport returned, so a batch with zero answers *and* zero billed
    // calls is the signature of a dead endpoint — exactly what should
    // count toward opening the circuit. Parse failures and partial
    // answers billed normally and stay breaker-neutral successes.
    let endpoint_alive =
        outcome.ledger.api_calls > 0 || outcome.answers.iter().any(Option::is_some);
    if endpoint_alive {
        inner.breaker.record_success();
    } else {
        let trips_before = inner.breaker.trips();
        inner.breaker.record_failure();
        if inner.breaker.trips() > trips_before {
            trigger_bundle(
                inner,
                "breaker_open",
                format!(
                    "circuit opened after a dead-endpoint batch of {}",
                    job.questions.len()
                ),
            );
        }
    }
    tel.retries.add(u64::from(outcome.retries));
    for &latency in &outcome.call_latencies_us {
        tel.llm_call_us.record(latency);
    }
    tel.batch_spend_micros
        .record(u64::try_from(outcome.ledger.total().micros()).unwrap_or(0));
    tel.batch_prompt_tokens
        .record(outcome.ledger.prompt_tokens.get());
    debug_assert!(
        ledger_within(&outcome.ledger, projected),
        "executor spend exceeded the governor projection"
    );
    guard.settle(&outcome.ledger);

    // Journal the batch's answers *before* filling the cache or waking
    // waiters: once a client observes an answer it must survive restart,
    // or the restarted service would re-buy it. One grouped append, so
    // the whole batch costs a single write (and at most one fsync).
    if let Some(durable) = &inner.durable {
        let answered = outcome.answers.iter().flatten().count() as i64;
        if answered > 0 {
            // Attribute the batch's settled spend evenly across its
            // answers — an accounting convention for the replayed ledger,
            // not a price signal (the budget maths only ever uses sums).
            let per_answer = outcome.ledger.total().micros() / answered;
            let records: Vec<DurableRecord> = job
                .questions
                .iter()
                .enumerate()
                .filter_map(|(slot, (fp, _, _))| {
                    outcome.answers.get(slot).copied().flatten().map(|label| {
                        // The owning shard rides the record for forensic
                        // replay; recovery re-routes by fingerprint, so a
                        // restart under a different shard count still
                        // fans every answer out to its current owner.
                        DurableRecord::AnswerSharded {
                            version: FINGERPRINT_VERSION,
                            fp: *fp,
                            label,
                            cost_micros: per_answer,
                            shard: job.shard as u32,
                        }
                    })
                })
                .collect();
            durable.append_group(&records);
            if durable.failed() {
                trigger_bundle(
                    inner,
                    "wal_degraded",
                    "journal append failed; serving without durability".to_owned(),
                );
            }
        }
    }

    for (slot, (fp, pair, senders)) in job.questions.iter().enumerate() {
        let decision = match outcome.answers.get(slot).copied().flatten() {
            Some(label) => {
                tel.llm_answered.inc();
                shard.cache.insert(*fp, label);
                MatchDecision { label, source: DecisionSource::Llm, fingerprint: *fp, trace_id: 0 }
            }
            // No parseable answer after retries: conservative local call.
            None => fallback_decision(inner, *fp, pair),
        };
        resolve_question(inner, shard, *fp, decision, senders, primary_trace);
    }
}

fn ledger_within(actual: &CostLedger, projected: Money) -> bool {
    actual.total() <= projected
}

/// Delivers a decision to a question's own waiters plus any waiters that
/// attached to its in-flight entry from later flushes, and unregisters
/// the question. Stamps each waiter's span with how the answer was
/// produced and its settlement; the terminal stage stays with `submit`.
fn resolve_question(
    inner: &Inner,
    shard: &ShardState,
    fp: PairFingerprint,
    decision: MatchDecision,
    senders: &[Waiter],
    primary_trace: u64,
) {
    let stage = match decision.source {
        DecisionSource::Llm => "llm_called",
        DecisionSource::Fallback => "fallback",
        DecisionSource::Cache => "cache_filled",
    };
    let attached = lock(&shard.in_flight).remove(&fp).unwrap_or_default();
    for waiter in senders.iter().chain(&attached) {
        inner.telemetry.trace.stamp(waiter.trace, stage);
        // Coalesced waiters rode an LLM call another trace paid for:
        // point their span at the primary, which owns the downstream
        // child spans (each child is attributed exactly once).
        if decision.source == DecisionSource::Llm
            && primary_trace != 0
            && waiter.trace != primary_trace
        {
            inner
                .telemetry
                .trace
                .stamp_with(waiter.trace, "llm_shared", primary_trace.to_string());
        }
        inner.telemetry.trace.stamp(waiter.trace, "settled");
        let _ = waiter.tx.send(decision);
    }
}

/// Answers every question of a batch with the logistic fallback.
fn answer_via_fallback(inner: &Inner, job: &BatchJob) {
    let shard = &inner.shards[job.shard];
    for (fp, pair, senders) in &job.questions {
        let decision = fallback_decision(inner, *fp, pair);
        resolve_question(inner, shard, *fp, decision, senders, 0);
    }
}
