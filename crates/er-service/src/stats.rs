//! The service's observability snapshot (`GET /stats`).

use er_core::Money;
use serde::{Deserialize, Serialize};

/// Point-in-time service statistics. All counters are monotonic except
/// the budget gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Questions submitted (including cache hits).
    pub submitted: u64,
    /// Answer-cache hits.
    pub cache_hits: u64,
    /// Answer-cache misses.
    pub cache_misses: u64,
    /// Entries currently cached.
    pub cache_entries: u64,
    /// Questions answered without their own LLM slot: duplicates riding
    /// on an identical in-flight question, or filled from the cache while
    /// queued.
    pub coalesced_duplicates: u64,
    /// Questions answered by the LLM.
    pub llm_answered: u64,
    /// Questions answered by the logistic fallback (budget denials and
    /// unparseable LLM output).
    pub fallback_answered: u64,
    /// Batches flushed out of the coalescing queue.
    pub batches_flushed: u64,
    /// Planning passes run (one per non-empty flush).
    pub plans: u64,
    /// Planning passes that took the full path (thresholds re-derived,
    /// caches rebuilt).
    pub plan_full: u64,
    /// Planning passes that reused the incremental planner's cached
    /// geometry.
    pub plan_incremental: u64,
    /// Questions inserted into the planner by the most recent pass.
    pub plan_last_inserted: u64,
    /// Questions retired from the planner by the most recent pass.
    pub plan_last_retired: u64,
    /// Wall time of the most recent planning pass, microseconds — the
    /// kernel layer's speedup, observable online.
    pub plan_last_us: u64,
    /// Mean planning wall time across all passes, microseconds.
    ///
    /// Deprecated alias: kept for wire compatibility, now derived from
    /// the plan-wall-time histogram (a running mean hides the tail —
    /// prefer [`ServiceStats::plan_p50_us`] / [`ServiceStats::plan_p99_us`]).
    pub plan_avg_us: u64,
    /// Median planning wall time, microseconds (histogram-backed).
    #[serde(default)]
    pub plan_p50_us: u64,
    /// 99th-percentile planning wall time, microseconds.
    #[serde(default)]
    pub plan_p99_us: u64,
    /// Median end-to-end submit-to-answer latency, microseconds, across
    /// every decision source.
    #[serde(default)]
    pub answer_p50_us: u64,
    /// 99th-percentile end-to-end submit-to-answer latency, microseconds.
    #[serde(default)]
    pub answer_p99_us: u64,
    /// Executor retries (rate limits + malformed output).
    pub retries: u64,
    /// LLM API calls issued.
    pub api_calls: u64,
    /// Prompt tokens sent.
    pub prompt_tokens: u64,
    /// Completion tokens received.
    pub completion_tokens: u64,
    /// Unique demonstrations human-labeled (labeling is paid once each).
    pub demos_labeled: u64,
    /// API spend, micro-dollars.
    pub api_micros: i64,
    /// Labeling spend, micro-dollars.
    pub labeling_micros: i64,
    /// Total spend, micro-dollars.
    pub spent_micros: i64,
    /// Configured budget, micro-dollars.
    pub budget_micros: i64,
    /// Budget neither spent nor reserved, micro-dollars.
    pub remaining_micros: i64,
    /// Batches denied by the governor and served via fallback.
    pub budget_denials: u64,
    /// Whether the durable write-ahead log is wired.
    #[serde(default)]
    pub wal_enabled: bool,
    /// Durable records appended this run.
    #[serde(default)]
    pub wal_appends: u64,
    /// WAL appends that failed (the service keeps serving, degraded).
    #[serde(default)]
    pub wal_append_errors: u64,
    /// Durable records replayed at startup.
    #[serde(default)]
    pub recovery_records_replayed: u64,
    /// Torn-tail bytes truncated from the WAL at startup.
    #[serde(default)]
    pub recovery_truncated_bytes: u64,
    /// Distinct cached answers restored by recovery replay.
    #[serde(default)]
    pub recovery_answers_restored: u64,
    /// Reserves found without settle-or-refund at startup (crash
    /// evidence; their budget replays as refunded).
    #[serde(default)]
    pub recovery_open_reservations: u64,
    /// Reservations refunded without spend (aborts + drop guards).
    #[serde(default)]
    pub governor_refunds: u64,
    /// Times the LLM circuit breaker opened.
    #[serde(default)]
    pub breaker_trips: u64,
    /// Breaker state: 0 closed, 1 open, 2 half-open.
    #[serde(default)]
    pub breaker_state: u64,
    /// Metric-index builds (ε-graph, coverage, and top-k accelerators).
    /// Process-wide, so it stays visible with telemetry disabled.
    #[serde(default)]
    pub index_builds: u64,
    /// Metric-index queries answered (region, top-k, and pair sweeps).
    #[serde(default)]
    pub index_queries: u64,
    /// Fraction of candidate comparisons the metric index eliminated
    /// before any full distance computation, basis points (0-10000).
    #[serde(default)]
    pub index_pruned_bp: u64,
    /// Median per-pass mean metric-index query latency, microseconds
    /// (histogram-backed).
    #[serde(default)]
    pub index_query_p50_us: u64,
    /// 99th-percentile per-pass mean metric-index query latency,
    /// microseconds.
    #[serde(default)]
    pub index_query_p99_us: u64,
    /// Configured serving shards (1 = unsharded layout).
    #[serde(default)]
    pub shards: u64,
    /// Questions shed by the admission bound, summed across shards.
    #[serde(default)]
    pub shed_total: u64,
    /// High-water pending-queue depth this run (max across shards) — the
    /// backpressure headline the traffic-replay bench tracks.
    #[serde(default)]
    pub queue_depth_peak: u64,
    /// Median planner-lock hold time, microseconds (service-wide
    /// histogram; shrinks as shards split the flush path's contention).
    #[serde(default)]
    pub planner_lock_hold_p50_us: u64,
    /// 99th-percentile planner-lock hold time, microseconds.
    #[serde(default)]
    pub planner_lock_hold_p99_us: u64,
    /// Answer-cache entries evicted by the LRU bound.
    #[serde(default)]
    pub cache_evictions: u64,
    /// Governor-lease refills, summed across shards (0 in pass-through
    /// mode, where every batch reserves globally).
    #[serde(default)]
    pub lease_refills: u64,
}

/// The `GET /healthz` payload: readiness plus the durability and
/// breaker signals an operator pages on.
///
/// `status` is `"serving"` (healthy), `"degraded"` (a WAL append failed
/// — answers still flow, durability of new records is gone until
/// restart), or `"recovering"` (reserved for future asynchronous
/// recovery; today replay completes inside `ErService::start`, before
/// the HTTP front end can bind).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthReport {
    /// `"serving"`, `"degraded"` or `"recovering"`.
    pub status: String,
    /// Whether a WAL is wired at all.
    pub wal_enabled: bool,
    /// Milliseconds since the WAL last fsynced (`-1`: WAL off or never
    /// synced).
    pub wal_last_sync_age_ms: i64,
    /// Records written through to the kernel but not yet fsynced.
    pub wal_unsynced_appends: u64,
    /// Total valid WAL bytes on disk.
    pub wal_total_bytes: u64,
    /// `"closed"`, `"open"`, `"half_open"` or `"disabled"`.
    pub breaker: String,
    /// Durable records replayed at startup.
    pub recovery_records_replayed: u64,
    /// Torn-tail bytes truncated at startup.
    pub recovery_truncated_bytes: u64,
    /// Distinct cached answers restored at startup.
    pub recovery_answers_restored: u64,
    /// Crash-evidence reservations found at startup.
    pub recovery_open_reservations: u64,
    /// Configured serving shards (1 = unsharded layout).
    #[serde(default)]
    pub shards: u64,
    /// Questions shed by the admission bound, summed across shards.
    #[serde(default)]
    pub shed_total: u64,
    /// True when any shard's pending queue is at or past half its
    /// admission bound — the "near shedding" early-warning signal.
    #[serde(default)]
    pub backpressure: bool,
}

impl ServiceStats {
    /// Cache hit rate in `[0, 1]`; 0 when nothing was looked up.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Total spend as [`Money`].
    pub fn spend(&self) -> Money {
        Money::from_micros(self.spent_micros)
    }

    /// Configured budget as [`Money`].
    pub fn budget(&self) -> Money {
        Money::from_micros(self.budget_micros)
    }

    /// True while spend is within the configured budget.
    pub fn within_budget(&self) -> bool {
        self.spent_micros <= self.budget_micros
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServiceStats {
        ServiceStats {
            submitted: 10,
            cache_hits: 3,
            cache_misses: 7,
            cache_entries: 5,
            coalesced_duplicates: 2,
            llm_answered: 4,
            fallback_answered: 1,
            batches_flushed: 1,
            plans: 2,
            plan_full: 1,
            plan_incremental: 1,
            plan_last_inserted: 3,
            plan_last_retired: 1,
            plan_last_us: 180,
            plan_avg_us: 210,
            plan_p50_us: 190,
            plan_p99_us: 240,
            answer_p50_us: 2_100,
            answer_p99_us: 9_800,
            retries: 0,
            api_calls: 1,
            prompt_tokens: 900,
            completion_tokens: 80,
            demos_labeled: 4,
            api_micros: 1_060,
            labeling_micros: 32_000,
            spent_micros: 33_060,
            budget_micros: 1_000_000,
            remaining_micros: 966_940,
            budget_denials: 0,
            wal_enabled: true,
            wal_appends: 12,
            wal_append_errors: 0,
            recovery_records_replayed: 6,
            recovery_truncated_bytes: 17,
            recovery_answers_restored: 4,
            recovery_open_reservations: 1,
            governor_refunds: 1,
            breaker_trips: 0,
            breaker_state: 0,
            index_builds: 3,
            index_queries: 210,
            index_pruned_bp: 9_870,
            index_query_p50_us: 45,
            index_query_p99_us: 160,
            shards: 4,
            shed_total: 2,
            queue_depth_peak: 11,
            planner_lock_hold_p50_us: 35,
            planner_lock_hold_p99_us: 140,
            cache_evictions: 9,
            lease_refills: 3,
        }
    }

    #[test]
    fn hit_rate() {
        assert!((sample().cache_hit_rate() - 0.3).abs() < 1e-12);
        let empty = ServiceStats { cache_hits: 0, cache_misses: 0, ..sample() };
        assert_eq!(empty.cache_hit_rate(), 0.0);
    }

    #[test]
    fn budget_accessors() {
        let s = sample();
        assert!(s.within_budget());
        assert_eq!(s.spend(), Money::from_micros(33_060));
        assert_eq!(s.budget(), Money::from_dollars(1.0));
    }

    #[test]
    fn json_roundtrip() {
        let s = sample();
        let json = serde_json::to_vec(&s).unwrap();
        let back: ServiceStats = serde_json::from_slice(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn old_wire_payload_without_percentiles_still_parses() {
        // Pre-histogram scrapers serialized no percentile fields; the
        // `#[serde(default)]` markers keep their payloads readable.
        let mut json = String::from_utf8(serde_json::to_vec(&sample()).unwrap()).unwrap();
        for (field, value) in [
            ("plan_p50_us", 190),
            ("plan_p99_us", 240),
            ("answer_p50_us", 2_100),
            ("answer_p99_us", 9_800),
        ] {
            json = json.replace(&format!("\"{field}\":{value},"), "");
        }
        let back: ServiceStats = serde_json::from_slice(json.as_bytes()).unwrap();
        assert_eq!(back.plan_p50_us, 0);
        assert_eq!(back.answer_p99_us, 0);
        assert_eq!(back.submitted, sample().submitted);
    }

    #[test]
    fn pre_durability_wire_payload_still_parses() {
        // Scrapers from before the WAL tier sent none of the durability
        // fields; `#[serde(default)]` keeps their payloads readable.
        let mut json = String::from_utf8(serde_json::to_vec(&sample()).unwrap()).unwrap();
        for field in [
            "\"wal_enabled\":true,",
            "\"wal_appends\":12,",
            "\"wal_append_errors\":0,",
            "\"recovery_records_replayed\":6,",
            "\"recovery_truncated_bytes\":17,",
            "\"recovery_answers_restored\":4,",
            "\"recovery_open_reservations\":1,",
            "\"governor_refunds\":1,",
            "\"breaker_trips\":0,",
            ",\"breaker_state\":0", // last field: leading comma instead
        ] {
            json = json.replace(field, "");
        }
        let back: ServiceStats = serde_json::from_slice(json.as_bytes()).unwrap();
        assert!(!back.wal_enabled);
        assert_eq!(back.recovery_answers_restored, 0);
        assert_eq!(back.spent_micros, sample().spent_micros);
    }

    #[test]
    fn pre_index_wire_payload_still_parses() {
        // Scrapers from before the metric-index tier sent none of the
        // index fields; `#[serde(default)]` keeps their payloads
        // readable.
        let mut json = String::from_utf8(serde_json::to_vec(&sample()).unwrap()).unwrap();
        for field in [
            "\"index_builds\":3,",
            "\"index_queries\":210,",
            "\"index_pruned_bp\":9870,",
            "\"index_query_p50_us\":45,",
            ",\"index_query_p99_us\":160", // last field: leading comma instead
        ] {
            let stripped = json.replace(field, "");
            assert_ne!(stripped, json, "field pattern `{field}` did not match");
            json = stripped;
        }
        let back: ServiceStats = serde_json::from_slice(json.as_bytes()).unwrap();
        assert_eq!(back.index_builds, 0);
        assert_eq!(back.index_query_p99_us, 0);
        assert_eq!(back.submitted, sample().submitted);
    }

    #[test]
    fn pre_shard_wire_payload_still_parses() {
        // Scrapers from before the sharded serving core sent none of the
        // shard/admission fields; `#[serde(default)]` keeps their
        // payloads readable (the "additive fields only" contract).
        let mut json = String::from_utf8(serde_json::to_vec(&sample()).unwrap()).unwrap();
        for field in [
            "\"shards\":4,",
            "\"shed_total\":2,",
            "\"queue_depth_peak\":11,",
            "\"planner_lock_hold_p50_us\":35,",
            "\"planner_lock_hold_p99_us\":140,",
            "\"cache_evictions\":9,",
            ",\"lease_refills\":3", // last field: leading comma instead
        ] {
            let stripped = json.replace(field, "");
            assert_ne!(stripped, json, "field pattern `{field}` did not match");
            json = stripped;
        }
        let back: ServiceStats = serde_json::from_slice(json.as_bytes()).unwrap();
        assert_eq!(back.shards, 0);
        assert_eq!(back.shed_total, 0);
        assert_eq!(back.lease_refills, 0);
        assert_eq!(back.submitted, sample().submitted);
    }

    #[test]
    fn health_report_roundtrips() {
        let health = HealthReport {
            status: "serving".to_owned(),
            wal_enabled: true,
            wal_last_sync_age_ms: 12,
            wal_unsynced_appends: 3,
            wal_total_bytes: 4_096,
            breaker: "closed".to_owned(),
            recovery_records_replayed: 9,
            recovery_truncated_bytes: 0,
            recovery_answers_restored: 5,
            recovery_open_reservations: 0,
            shards: 2,
            shed_total: 1,
            backpressure: false,
        };
        let json = serde_json::to_vec(&health).unwrap();
        let back: HealthReport = serde_json::from_slice(&json).unwrap();
        assert_eq!(back, health);

        // Pre-shard health payloads (no shard fields) still parse.
        let stripped = String::from_utf8(serde_json::to_vec(&health).unwrap())
            .unwrap()
            .replace("\"shards\":2,", "")
            .replace("\"shed_total\":1,", "")
            .replace(",\"backpressure\":false", "");
        let old: HealthReport = serde_json::from_slice(stripped.as_bytes()).unwrap();
        assert_eq!(old.shards, 0);
        assert!(!old.backpressure);
    }
}
