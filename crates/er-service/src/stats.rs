//! The service's observability snapshot (`GET /stats`).

use er_core::Money;
use serde::{Deserialize, Serialize};

/// Point-in-time service statistics. All counters are monotonic except
/// the budget gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Questions submitted (including cache hits).
    pub submitted: u64,
    /// Answer-cache hits.
    pub cache_hits: u64,
    /// Answer-cache misses.
    pub cache_misses: u64,
    /// Entries currently cached.
    pub cache_entries: u64,
    /// Questions answered without their own LLM slot: duplicates riding
    /// on an identical in-flight question, or filled from the cache while
    /// queued.
    pub coalesced_duplicates: u64,
    /// Questions answered by the LLM.
    pub llm_answered: u64,
    /// Questions answered by the logistic fallback (budget denials and
    /// unparseable LLM output).
    pub fallback_answered: u64,
    /// Batches flushed out of the coalescing queue.
    pub batches_flushed: u64,
    /// Planning passes run (one per non-empty flush).
    pub plans: u64,
    /// Planning passes that took the full path (thresholds re-derived,
    /// caches rebuilt).
    pub plan_full: u64,
    /// Planning passes that reused the incremental planner's cached
    /// geometry.
    pub plan_incremental: u64,
    /// Questions inserted into the planner by the most recent pass.
    pub plan_last_inserted: u64,
    /// Questions retired from the planner by the most recent pass.
    pub plan_last_retired: u64,
    /// Wall time of the most recent planning pass, microseconds — the
    /// kernel layer's speedup, observable online.
    pub plan_last_us: u64,
    /// Mean planning wall time across all passes, microseconds.
    ///
    /// Deprecated alias: kept for wire compatibility, now derived from
    /// the plan-wall-time histogram (a running mean hides the tail —
    /// prefer [`ServiceStats::plan_p50_us`] / [`ServiceStats::plan_p99_us`]).
    pub plan_avg_us: u64,
    /// Median planning wall time, microseconds (histogram-backed).
    #[serde(default)]
    pub plan_p50_us: u64,
    /// 99th-percentile planning wall time, microseconds.
    #[serde(default)]
    pub plan_p99_us: u64,
    /// Median end-to-end submit-to-answer latency, microseconds, across
    /// every decision source.
    #[serde(default)]
    pub answer_p50_us: u64,
    /// 99th-percentile end-to-end submit-to-answer latency, microseconds.
    #[serde(default)]
    pub answer_p99_us: u64,
    /// Executor retries (rate limits + malformed output).
    pub retries: u64,
    /// LLM API calls issued.
    pub api_calls: u64,
    /// Prompt tokens sent.
    pub prompt_tokens: u64,
    /// Completion tokens received.
    pub completion_tokens: u64,
    /// Unique demonstrations human-labeled (labeling is paid once each).
    pub demos_labeled: u64,
    /// API spend, micro-dollars.
    pub api_micros: i64,
    /// Labeling spend, micro-dollars.
    pub labeling_micros: i64,
    /// Total spend, micro-dollars.
    pub spent_micros: i64,
    /// Configured budget, micro-dollars.
    pub budget_micros: i64,
    /// Budget neither spent nor reserved, micro-dollars.
    pub remaining_micros: i64,
    /// Batches denied by the governor and served via fallback.
    pub budget_denials: u64,
}

impl ServiceStats {
    /// Cache hit rate in `[0, 1]`; 0 when nothing was looked up.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Total spend as [`Money`].
    pub fn spend(&self) -> Money {
        Money::from_micros(self.spent_micros)
    }

    /// Configured budget as [`Money`].
    pub fn budget(&self) -> Money {
        Money::from_micros(self.budget_micros)
    }

    /// True while spend is within the configured budget.
    pub fn within_budget(&self) -> bool {
        self.spent_micros <= self.budget_micros
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServiceStats {
        ServiceStats {
            submitted: 10,
            cache_hits: 3,
            cache_misses: 7,
            cache_entries: 5,
            coalesced_duplicates: 2,
            llm_answered: 4,
            fallback_answered: 1,
            batches_flushed: 1,
            plans: 2,
            plan_full: 1,
            plan_incremental: 1,
            plan_last_inserted: 3,
            plan_last_retired: 1,
            plan_last_us: 180,
            plan_avg_us: 210,
            plan_p50_us: 190,
            plan_p99_us: 240,
            answer_p50_us: 2_100,
            answer_p99_us: 9_800,
            retries: 0,
            api_calls: 1,
            prompt_tokens: 900,
            completion_tokens: 80,
            demos_labeled: 4,
            api_micros: 1_060,
            labeling_micros: 32_000,
            spent_micros: 33_060,
            budget_micros: 1_000_000,
            remaining_micros: 966_940,
            budget_denials: 0,
        }
    }

    #[test]
    fn hit_rate() {
        assert!((sample().cache_hit_rate() - 0.3).abs() < 1e-12);
        let empty = ServiceStats { cache_hits: 0, cache_misses: 0, ..sample() };
        assert_eq!(empty.cache_hit_rate(), 0.0);
    }

    #[test]
    fn budget_accessors() {
        let s = sample();
        assert!(s.within_budget());
        assert_eq!(s.spend(), Money::from_micros(33_060));
        assert_eq!(s.budget(), Money::from_dollars(1.0));
    }

    #[test]
    fn json_roundtrip() {
        let s = sample();
        let json = serde_json::to_vec(&s).unwrap();
        let back: ServiceStats = serde_json::from_slice(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn old_wire_payload_without_percentiles_still_parses() {
        // Pre-histogram scrapers serialized no percentile fields; the
        // `#[serde(default)]` markers keep their payloads readable.
        let mut json = String::from_utf8(serde_json::to_vec(&sample()).unwrap()).unwrap();
        for (field, value) in [
            ("plan_p50_us", 190),
            ("plan_p99_us", 240),
            ("answer_p50_us", 2_100),
            ("answer_p99_us", 9_800),
        ] {
            json = json.replace(&format!("\"{field}\":{value},"), "");
        }
        let back: ServiceStats = serde_json::from_slice(json.as_bytes()).unwrap();
        assert_eq!(back.plan_p50_us, 0);
        assert_eq!(back.answer_p99_us, 0);
        assert_eq!(back.submitted, sample().submitted);
    }
}
