//! The perturbation engine: controlled corruption of attribute values.
//!
//! Matching pairs in real ER benchmarks are the *same* entity described
//! twice with formatting drift — typos, abbreviations, dropped tokens,
//! missing fields. Each generated pair draws one [`CorruptionPattern`]
//! describing *how* its B-side drifts from its A-side; pairs sharing a
//! pattern have similar structure-aware feature vectors, which is what
//! makes question clustering (and covering-based selection) meaningful.

use rand::rngs::StdRng;
use rand::Rng;

/// A typed way in which the B-side of a pair drifts from the A-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionPattern {
    /// Nearly verbatim copy; at most whitespace/case drift.
    Verbatim,
    /// Character-level typos in one or two values.
    Typos,
    /// Tokens dropped from long values (truncated titles).
    TokenDrop,
    /// Words abbreviated ("international" → "intl.", initials).
    Abbreviation,
    /// One attribute missing entirely on the B-side.
    MissingAttr,
    /// Extra marketing/noise tokens appended.
    ExtraTokens,
    /// Numeric formatting drift (prices, times, years).
    NumberFormat,
    /// Token order scrambled ("last, first" author flips).
    Reorder,
}

impl CorruptionPattern {
    /// All patterns, for exhaustive iteration in tests and configs.
    pub const ALL: [CorruptionPattern; 8] = [
        CorruptionPattern::Verbatim,
        CorruptionPattern::Typos,
        CorruptionPattern::TokenDrop,
        CorruptionPattern::Abbreviation,
        CorruptionPattern::MissingAttr,
        CorruptionPattern::ExtraTokens,
        CorruptionPattern::NumberFormat,
        CorruptionPattern::Reorder,
    ];
}

/// How aggressively a dataset corrupts its matching pairs. Higher values
/// produce harder benchmarks (lower matcher F1), calibrated per dataset in
/// [`crate::profiles`].
#[derive(Debug, Clone, Copy)]
pub struct Intensity {
    /// Number of corruption applications per affected value (1..=3).
    pub strength: u32,
    /// Probability that a second attribute is also corrupted.
    pub second_attr_prob: f64,
}

/// Applies `pattern` to the values of an entity, returning the drifted
/// copy. `key_attrs` marks attributes that must never be blanked (a title
/// can degrade but not vanish, or the pair would be unlabelable even for
/// a human).
pub fn apply_pattern(
    values: &[String],
    pattern: CorruptionPattern,
    intensity: Intensity,
    key_attrs: &[usize],
    rng: &mut StdRng,
) -> Vec<String> {
    let mut out: Vec<String> = values.to_vec();
    if out.is_empty() {
        return out;
    }
    let primary = rng.gen_range(0..out.len());
    let mut targets = vec![primary];
    if rng.gen::<f64>() < intensity.second_attr_prob && out.len() > 1 {
        let mut second = rng.gen_range(0..out.len());
        if second == primary {
            second = (second + 1) % out.len();
        }
        targets.push(second);
    }
    for &t in &targets {
        let corrupted = corrupt_value(&out[t], pattern, intensity.strength, rng);
        // Never blank a key attribute.
        if corrupted.trim().is_empty() && key_attrs.contains(&t) {
            continue;
        }
        out[t] = corrupted;
    }
    out
}

/// Applies one pattern to a single value.
pub fn corrupt_value(
    value: &str,
    pattern: CorruptionPattern,
    strength: u32,
    rng: &mut StdRng,
) -> String {
    if value.is_empty() {
        return String::new();
    }
    match pattern {
        CorruptionPattern::Verbatim => value.to_owned(),
        CorruptionPattern::Typos => {
            let mut s = value.to_owned();
            for _ in 0..strength {
                s = typo(&s, rng);
            }
            s
        }
        CorruptionPattern::TokenDrop => drop_tokens(value, strength as usize, rng),
        CorruptionPattern::Abbreviation => abbreviate(value, rng),
        CorruptionPattern::MissingAttr => String::new(),
        CorruptionPattern::ExtraTokens => {
            const FILLER: &[&str] = &["new", "sealed", "oem", "2-pack", "official", "edition"];
            let mut s = value.to_owned();
            for _ in 0..strength.min(2) {
                s.push(' ');
                s.push_str(FILLER[rng.gen_range(0..FILLER.len())]);
            }
            s
        }
        CorruptionPattern::NumberFormat => number_drift(value, rng),
        CorruptionPattern::Reorder => reorder(value, rng),
    }
}

/// One random character edit: swap, delete, duplicate or replace.
fn typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return s.to_owned();
    }
    let mut out = chars.clone();
    let i = rng.gen_range(0..out.len() - 1);
    match rng.gen_range(0..4u8) {
        0 => out.swap(i, i + 1),
        1 => {
            out.remove(i);
        }
        2 => out.insert(i, out[i]),
        _ => {
            let alphabet = "abcdefghijklmnopqrstuvwxyz";
            let replacement = alphabet
                .chars()
                .nth(rng.gen_range(0..alphabet.len()))
                .expect("alphabet non-empty");
            out[i] = replacement;
        }
    }
    out.into_iter().collect()
}

/// Drops up to `n` tokens, always keeping at least one.
fn drop_tokens(s: &str, n: usize, rng: &mut StdRng) -> String {
    let mut tokens: Vec<&str> = s.split_whitespace().collect();
    for _ in 0..n {
        if tokens.len() <= 1 {
            break;
        }
        let i = rng.gen_range(0..tokens.len());
        tokens.remove(i);
    }
    tokens.join(" ")
}

/// Abbreviates one long token to its first letters.
fn abbreviate(s: &str, rng: &mut StdRng) -> String {
    let tokens: Vec<&str> = s.split_whitespace().collect();
    if tokens.is_empty() {
        return s.to_owned();
    }
    let candidates: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.len() > 4)
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return s.to_owned();
    }
    let target = candidates[rng.gen_range(0..candidates.len())];
    let mut out: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
    let keep = rng.gen_range(1..=4usize).min(out[target].len());
    let prefix: String = out[target].chars().take(keep).collect();
    out[target] = format!("{prefix}.");
    out.join(" ")
}

/// Perturbs digits: reformat or round numbers ("12.99" -> "12.95",
/// "1999" -> "99").
fn number_drift(s: &str, rng: &mut StdRng) -> String {
    let tokens: Vec<String> = s
        .split_whitespace()
        .map(|t| {
            if t.chars().any(|c| c.is_ascii_digit()) && rng.gen::<f64>() < 0.8 {
                drift_numeric_token(t, rng)
            } else {
                t.to_owned()
            }
        })
        .collect();
    tokens.join(" ")
}

fn drift_numeric_token(t: &str, rng: &mut StdRng) -> String {
    match rng.gen_range(0..3u8) {
        // Drop a trailing digit/cent: "12.99" -> "12.9".
        0 if t.len() > 1 => t[..t.len() - 1].to_owned(),
        // Duplicate format drift: prefix with "$" or strip it.
        1 => {
            if let Some(stripped) = t.strip_prefix('$') {
                stripped.to_owned()
            } else {
                format!("${t}")
            }
        }
        // Replace one digit.
        _ => {
            let mut chars: Vec<char> = t.chars().collect();
            let digit_positions: Vec<usize> = chars
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_ascii_digit())
                .map(|(i, _)| i)
                .collect();
            if let Some(&pos) = digit_positions.get(
                rng.gen_range(0..digit_positions.len().max(1))
                    .min(digit_positions.len().saturating_sub(1)),
            ) {
                chars[pos] = char::from_digit(rng.gen_range(0..10), 10).expect("digit");
            }
            chars.into_iter().collect()
        }
    }
}

/// Moves one token to the front (author-order style flip).
fn reorder(s: &str, rng: &mut StdRng) -> String {
    let mut tokens: Vec<&str> = s.split_whitespace().collect();
    if tokens.len() < 2 {
        return s.to_owned();
    }
    let i = rng.gen_range(1..tokens.len());
    let tok = tokens.remove(i);
    tokens.insert(0, tok);
    tokens.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    const INTENSITY: Intensity = Intensity { strength: 1, second_attr_prob: 0.0 };

    #[test]
    fn verbatim_is_identity() {
        let mut r = rng();
        assert_eq!(
            corrupt_value("hello world", CorruptionPattern::Verbatim, 1, &mut r),
            "hello world"
        );
    }

    #[test]
    fn typo_changes_string_but_stays_close() {
        let mut r = rng();
        let out = corrupt_value(
            "samsung galaxy s21 ultra",
            CorruptionPattern::Typos,
            1,
            &mut r,
        );
        assert_ne!(out, "samsung galaxy s21 ultra");
        assert!(text_sim::levenshtein("samsung galaxy s21 ultra", &out) <= 2);
    }

    #[test]
    fn token_drop_keeps_at_least_one() {
        let mut r = rng();
        let out = corrupt_value("one", CorruptionPattern::TokenDrop, 5, &mut r);
        assert_eq!(out, "one");
        let out2 = corrupt_value("a b c d", CorruptionPattern::TokenDrop, 2, &mut r);
        assert!(out2.split_whitespace().count() >= 1);
        assert!(out2.split_whitespace().count() < 4);
    }

    #[test]
    fn abbreviation_shortens_a_long_token() {
        let mut r = rng();
        let out = corrupt_value(
            "international business machines",
            CorruptionPattern::Abbreviation,
            1,
            &mut r,
        );
        assert!(out.contains('.'), "no abbreviation mark in {out:?}");
        assert!(out.len() < "international business machines".len());
    }

    #[test]
    fn missing_blanks_value() {
        let mut r = rng();
        assert_eq!(
            corrupt_value("anything", CorruptionPattern::MissingAttr, 1, &mut r),
            ""
        );
    }

    #[test]
    fn missing_respects_key_attrs() {
        let mut r = rng();
        let values = vec!["important title".to_owned()];
        // Only one attribute, and it is a key attribute: pattern must not
        // blank it.
        let out = apply_pattern(
            &values,
            CorruptionPattern::MissingAttr,
            INTENSITY,
            &[0],
            &mut r,
        );
        assert_eq!(out[0], "important title");
    }

    #[test]
    fn extra_tokens_appends() {
        let mut r = rng();
        let out = corrupt_value("canon eos r5", CorruptionPattern::ExtraTokens, 1, &mut r);
        assert!(out.starts_with("canon eos r5"));
        assert!(out.len() > "canon eos r5".len());
    }

    #[test]
    fn number_format_touches_digits_only_tokens() {
        let mut r = rng();
        let out = corrupt_value("price 12.99", CorruptionPattern::NumberFormat, 1, &mut r);
        assert!(out.starts_with("price"));
    }

    #[test]
    fn reorder_preserves_token_multiset() {
        let mut r = rng();
        let input = "alpha beta gamma delta";
        let out = corrupt_value(input, CorruptionPattern::Reorder, 1, &mut r);
        let mut a: Vec<&str> = input.split_whitespace().collect();
        let mut b: Vec<&str> = out.split_whitespace().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_value_stays_empty() {
        let mut r = rng();
        for p in CorruptionPattern::ALL {
            assert_eq!(corrupt_value("", p, 2, &mut r), "");
        }
    }

    #[test]
    fn apply_pattern_changes_at_most_two_attrs() {
        let mut r = rng();
        let values: Vec<String> = (0..5).map(|i| format!("value number {i} here")).collect();
        let out = apply_pattern(
            &values,
            CorruptionPattern::Typos,
            Intensity { strength: 1, second_attr_prob: 1.0 },
            &[],
            &mut r,
        );
        let changed = values.iter().zip(&out).filter(|(a, b)| a != b).count();
        assert!(changed <= 2, "changed {changed} attributes");
        assert!(changed >= 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a = corrupt_value("deterministic output", CorruptionPattern::Typos, 2, &mut r1);
        let b = corrupt_value("deterministic output", CorruptionPattern::Typos, 2, &mut r2);
        assert_eq!(a, b);
    }
}
