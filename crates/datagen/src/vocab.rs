//! Domain vocabularies for the synthetic benchmark generators.
//!
//! Each Magellan dataset covers a distinct domain (Table II); the word
//! pools below give the generators enough lexical texture that string
//! similarity behaves like it does on the real data: titles share brand
//! and family tokens, citations share venue names, and so on.

/// Electronics / product brands (WA, AB, AG).
pub const BRANDS: &[&str] = &[
    "samsung",
    "sony",
    "apple",
    "lenovo",
    "dell",
    "asus",
    "acer",
    "canon",
    "nikon",
    "logitech",
    "panasonic",
    "toshiba",
    "philips",
    "sharp",
    "jvc",
    "garmin",
    "netgear",
    "belkin",
    "sandisk",
    "kingston",
    "hp",
    "epson",
    "brother",
    "intel",
    "corsair",
    "msi",
    "gigabyte",
    "vizio",
];

/// Product nouns.
pub const PRODUCT_NOUNS: &[&str] = &[
    "laptop",
    "monitor",
    "keyboard",
    "mouse",
    "printer",
    "router",
    "camera",
    "lens",
    "speaker",
    "headphones",
    "charger",
    "adapter",
    "tablet",
    "projector",
    "scanner",
    "webcam",
    "microphone",
    "dock",
    "drive",
    "enclosure",
    "switch",
    "console",
    "soundbar",
    "tripod",
];

/// Product qualifiers.
pub const PRODUCT_QUALIFIERS: &[&str] = &[
    "wireless",
    "portable",
    "compact",
    "ultra",
    "pro",
    "slim",
    "gaming",
    "professional",
    "digital",
    "premium",
    "essential",
    "advanced",
    "classic",
    "smart",
    "dual",
    "mini",
];

/// Product categories (WA `category` attribute).
pub const CATEGORIES: &[&str] = &[
    "computers",
    "electronics",
    "accessories",
    "office products",
    "photography",
    "audio",
    "networking",
    "storage",
    "printers",
    "displays",
];

/// Software product nouns (AG).
pub const SOFTWARE_NOUNS: &[&str] = &[
    "photoshop elements",
    "quickbooks premier",
    "antivirus suite",
    "office standard",
    "creative studio",
    "backup utility",
    "video editor",
    "tax preparation",
    "language pack",
    "encyclopedia deluxe",
    "typing tutor",
    "web designer",
    "pdf converter",
    "music studio",
    "security essentials",
    "drawing suite",
    "project planner",
    "database manager",
];

/// Software manufacturers (AG `manufacturer`).
pub const SOFTWARE_MAKERS: &[&str] = &[
    "adobe",
    "intuit",
    "microsoft",
    "symantec",
    "corel",
    "mcafee",
    "autodesk",
    "roxio",
    "nuance",
    "broderbund",
    "encore",
    "topics entertainment",
    "individual software",
];

/// Research topic words (DS, DA titles).
pub const PAPER_TOPICS: &[&str] = &[
    "query optimization",
    "data integration",
    "entity resolution",
    "schema matching",
    "stream processing",
    "index structures",
    "transaction management",
    "view maintenance",
    "data mining",
    "information extraction",
    "web search",
    "xml processing",
    "sensor networks",
    "distributed joins",
    "approximate counting",
    "graph partitioning",
    "spatial indexing",
    "concurrency control",
    "materialized views",
    "data warehousing",
];

/// Title patterns for papers.
pub const PAPER_FRAMES: &[&str] = &[
    "efficient {} in relational databases",
    "a survey of {}",
    "scalable {} for large datasets",
    "on the complexity of {}",
    "adaptive {} revisited",
    "towards practical {}",
    "{}: models and algorithms",
    "parallel {} over shared memory",
];

/// Author surnames for citations.
pub const SURNAMES: &[&str] = &[
    "chen", "smith", "garcia", "kumar", "johnson", "mueller", "tanaka", "rossi", "ivanov",
    "martin", "lee", "wang", "brown", "davis", "wilson", "lopez", "gonzalez", "silva", "fischer",
    "weber", "yamamoto", "sato", "kim", "park", "nguyen", "patel", "singh",
];

/// Author first initials.
pub const INITIALS: &[&str] = &[
    "a", "b", "c", "d", "e", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w",
];

/// Publication venues (DS uses scruffy Scholar-style strings, DA clean ACM
/// strings — the generators vary the formatting).
pub const VENUES: &[&str] = &[
    "sigmod", "vldb", "icde", "kdd", "cikm", "edbt", "pods", "www", "icdm", "sdm",
];

/// Restaurant name stems (FZ).
pub const RESTAURANT_STEMS: &[&str] = &[
    "golden dragon",
    "la petite maison",
    "blue bayou",
    "the capital grille",
    "casa vega",
    "trattoria romana",
    "spice garden",
    "harbor house",
    "el charro",
    "maple diner",
    "lotus pavilion",
    "old mill tavern",
    "sunset bistro",
    "river cafe",
    "the olive branch",
    "bangkok palace",
    "copper kettle",
    "stone hearth",
    "villa toscana",
    "pearl oyster bar",
];

/// Cities (FZ).
pub const CITIES: &[&str] = &[
    "los angeles",
    "new york",
    "san francisco",
    "chicago",
    "atlanta",
    "new orleans",
    "las vegas",
    "boston",
    "seattle",
    "houston",
];

/// Cuisine types (FZ `type`).
pub const CUISINES: &[&str] = &[
    "american",
    "italian",
    "chinese",
    "french",
    "mexican",
    "thai",
    "seafood",
    "steakhouses",
    "cajun",
    "japanese",
];

/// Street names (FZ `addr`).
pub const STREETS: &[&str] = &[
    "sunset blvd",
    "main st",
    "broadway",
    "market st",
    "peachtree rd",
    "canal st",
    "ocean ave",
    "fifth ave",
    "lake shore dr",
    "mission st",
];

/// Song title words (IA).
pub const SONG_WORDS: &[&str] = &[
    "midnight", "summer", "heart", "fire", "golden", "river", "echo", "shadow", "diamond",
    "thunder", "velvet", "neon", "paper", "wild", "broken", "silver", "crimson", "hollow",
];

/// Artist names (IA).
pub const ARTISTS: &[&str] = &[
    "the wandering lights",
    "nova reyes",
    "cedar & pine",
    "dj altitude",
    "marlowe quartet",
    "violet skyline",
    "the brass foxes",
    "luna madre",
    "static bloom",
    "harbor kids",
];

/// Music genres (IA `genre`).
pub const GENRES: &[&str] = &[
    "pop",
    "rock",
    "hip-hop/rap",
    "country",
    "dance",
    "r&b/soul",
    "alternative",
    "electronic",
];

/// Beer name stems (Beer).
pub const BEER_STEMS: &[&str] = &[
    "hoppy trails",
    "midnight stout",
    "amber wave",
    "citrus haze",
    "old growler",
    "golden prairie",
    "iron anchor",
    "smoked porter",
    "river bend",
    "snow cap",
    "red barn",
    "cascade crush",
    "honey badger",
    "black canyon",
    "summer squall",
];

/// Breweries (Beer `brew_factory_name`).
pub const BREWERIES: &[&str] = &[
    "granite peak brewing",
    "blue heron ales",
    "founders of the valley",
    "twin pines brewery",
    "salt flat brewing co",
    "harbor light brewing",
    "timberline brewworks",
    "prairie fire ales",
];

/// Beer styles (Beer `style`).
pub const BEER_STYLES: &[&str] = &[
    "american ipa",
    "imperial stout",
    "pale ale",
    "pilsner",
    "amber lager",
    "hefeweizen",
    "porter",
    "saison",
    "brown ale",
    "double ipa",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_lowercase() {
        let pools: [&[&str]; 19] = [
            BRANDS,
            PRODUCT_NOUNS,
            PRODUCT_QUALIFIERS,
            CATEGORIES,
            SOFTWARE_NOUNS,
            SOFTWARE_MAKERS,
            PAPER_TOPICS,
            PAPER_FRAMES,
            SURNAMES,
            INITIALS,
            VENUES,
            RESTAURANT_STEMS,
            CITIES,
            CUISINES,
            STREETS,
            SONG_WORDS,
            ARTISTS,
            BEER_STEMS,
            BREWERIES,
        ];
        for pool in pools {
            assert!(!pool.is_empty());
            for w in pool {
                assert_eq!(*w, w.to_lowercase(), "vocab should be lowercase: {w}");
            }
        }
    }

    #[test]
    fn paper_frames_have_placeholder() {
        for f in PAPER_FRAMES {
            assert!(f.contains("{}"), "frame missing placeholder: {f}");
        }
    }

    #[test]
    fn pools_have_no_duplicates() {
        for pool in [BRANDS, SURNAMES, VENUES, GENRES, BEER_STYLES] {
            let mut sorted: Vec<&str> = pool.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), pool.len());
        }
    }
}
