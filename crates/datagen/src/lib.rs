//! Synthetic Magellan-style ER benchmarks.
//!
//! The paper evaluates on eight Magellan datasets (Table II). The raw
//! benchmark files are not available offline, so this crate synthesizes
//! schema-faithful stand-ins: per-dataset generators reproduce the paper's
//! attribute schemas, pair counts, match counts and — through calibrated
//! corruption profiles — the relative difficulty ordering (AG hardest,
//! FZ easiest).
//!
//! Every generator is deterministic in an explicit `u64` seed.
//!
//! ```
//! use datagen::{generate, DatasetKind};
//!
//! let dataset = generate(DatasetKind::Beer, 42);
//! assert_eq!(dataset.stats().pairs, 450);
//! assert_eq!(dataset.stats().matches, 68);
//! ```

pub mod builder;
pub mod csv;
pub mod perturb;
pub mod profiles;
pub mod vocab;

pub use builder::generate;
pub use csv::{from_csv, to_csv, CsvError};
pub use perturb::{CorruptionPattern, Intensity};
pub use profiles::{make_entity, DatasetKind, GeneratorProfile};
