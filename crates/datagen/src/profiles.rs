//! Per-dataset generator profiles: schemas, sizes (Table II), entity
//! factories and difficulty calibration.

use rand::rngs::StdRng;
use rand::Rng;

use crate::perturb::{CorruptionPattern, Intensity};
use crate::vocab;

/// The eight Magellan benchmarks reproduced from Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Walmart-Amazon (Electronics, 5 attrs, 10 242 pairs, 962 matches).
    WalmartAmazon,
    /// Abt-Buy (Product, 3 attrs, 9 575 pairs, 1 028 matches).
    AbtBuy,
    /// Amazon-Google (Software, 3 attrs, 11 460 pairs, 1 167 matches).
    AmazonGoogle,
    /// DBLP-Scholar (Citation, 4 attrs, 28 707 pairs, 5 347 matches).
    DblpScholar,
    /// DBLP-ACM (Citation, 4 attrs, 12 363 pairs, 2 220 matches).
    DblpAcm,
    /// Fodors-Zagats (Restaurant, 6 attrs, 946 pairs, 110 matches).
    FodorsZagats,
    /// iTunes-Amazon (Music, 8 attrs, 532 pairs, 132 matches).
    ItunesAmazon,
    /// Beer (Beer, 4 attrs, 450 pairs, 68 matches).
    Beer,
}

impl DatasetKind {
    /// All benchmarks in Table II order.
    pub const ALL: [DatasetKind; 8] = [
        DatasetKind::WalmartAmazon,
        DatasetKind::AbtBuy,
        DatasetKind::AmazonGoogle,
        DatasetKind::DblpScholar,
        DatasetKind::DblpAcm,
        DatasetKind::FodorsZagats,
        DatasetKind::ItunesAmazon,
        DatasetKind::Beer,
    ];

    /// Short name used in the paper's tables.
    pub fn short_name(self) -> &'static str {
        match self {
            DatasetKind::WalmartAmazon => "WA",
            DatasetKind::AbtBuy => "AB",
            DatasetKind::AmazonGoogle => "AG",
            DatasetKind::DblpScholar => "DS",
            DatasetKind::DblpAcm => "DA",
            DatasetKind::FodorsZagats => "FZ",
            DatasetKind::ItunesAmazon => "IA",
            DatasetKind::Beer => "Beer",
        }
    }

    /// The generator profile for this dataset.
    pub fn profile(self) -> GeneratorProfile {
        match self {
            DatasetKind::WalmartAmazon => GeneratorProfile {
                kind: self,
                domain: "Electronics",
                schema: &["title", "category", "brand", "modelno", "price"],
                n_pairs: 10_242,
                n_matches: 962,
                intensity: Intensity { strength: 2, second_attr_prob: 0.5 },
                pattern_weights: &[
                    (CorruptionPattern::Typos, 2.0),
                    (CorruptionPattern::TokenDrop, 2.0),
                    (CorruptionPattern::MissingAttr, 2.0),
                    (CorruptionPattern::ExtraTokens, 1.5),
                    (CorruptionPattern::NumberFormat, 1.5),
                    (CorruptionPattern::Abbreviation, 1.0),
                ],
                hard_negative_frac: 0.35,
                key_attrs: &[0],
            },
            DatasetKind::AbtBuy => GeneratorProfile {
                kind: self,
                domain: "Product",
                schema: &["name", "description", "price"],
                n_pairs: 9_575,
                n_matches: 1_028,
                intensity: Intensity { strength: 2, second_attr_prob: 0.4 },
                pattern_weights: &[
                    (CorruptionPattern::TokenDrop, 2.0),
                    (CorruptionPattern::Typos, 1.5),
                    (CorruptionPattern::MissingAttr, 1.5),
                    (CorruptionPattern::ExtraTokens, 1.0),
                    (CorruptionPattern::NumberFormat, 1.0),
                ],
                hard_negative_frac: 0.30,
                key_attrs: &[0],
            },
            DatasetKind::AmazonGoogle => GeneratorProfile {
                kind: self,
                domain: "Software",
                schema: &["title", "manufacturer", "price"],
                n_pairs: 11_460,
                n_matches: 1_167,
                // The hardest benchmark in the paper (F1 ≈ 60): aggressive
                // corruption and many version-sibling hard negatives.
                intensity: Intensity { strength: 3, second_attr_prob: 0.65 },
                pattern_weights: &[
                    (CorruptionPattern::TokenDrop, 2.5),
                    (CorruptionPattern::Typos, 2.0),
                    (CorruptionPattern::MissingAttr, 2.0),
                    (CorruptionPattern::NumberFormat, 2.0),
                    (CorruptionPattern::ExtraTokens, 1.5),
                    (CorruptionPattern::Abbreviation, 1.5),
                ],
                hard_negative_frac: 0.55,
                key_attrs: &[0],
            },
            DatasetKind::DblpScholar => GeneratorProfile {
                kind: self,
                domain: "Citation",
                schema: &["title", "authors", "venue", "year"],
                n_pairs: 28_707,
                n_matches: 5_347,
                // Scholar-side metadata is scruffy: abbreviations and
                // missing fields dominate.
                intensity: Intensity { strength: 2, second_attr_prob: 0.55 },
                pattern_weights: &[
                    (CorruptionPattern::Abbreviation, 2.5),
                    (CorruptionPattern::MissingAttr, 2.0),
                    (CorruptionPattern::Reorder, 1.5),
                    (CorruptionPattern::Typos, 1.5),
                    (CorruptionPattern::TokenDrop, 1.0),
                ],
                hard_negative_frac: 0.40,
                key_attrs: &[0],
            },
            DatasetKind::DblpAcm => GeneratorProfile {
                kind: self,
                domain: "Citation",
                schema: &["title", "authors", "venue", "year"],
                n_pairs: 12_363,
                n_matches: 2_220,
                // ACM metadata is clean: light drift only.
                intensity: Intensity { strength: 1, second_attr_prob: 0.3 },
                pattern_weights: &[
                    (CorruptionPattern::Verbatim, 2.0),
                    (CorruptionPattern::Abbreviation, 1.5),
                    (CorruptionPattern::Reorder, 1.5),
                    (CorruptionPattern::Typos, 1.0),
                ],
                hard_negative_frac: 0.25,
                key_attrs: &[0],
            },
            DatasetKind::FodorsZagats => GeneratorProfile {
                kind: self,
                domain: "Restaurant",
                schema: &["name", "addr", "city", "phone", "type", "class"],
                n_pairs: 946,
                n_matches: 110,
                // The easiest benchmark (paper reaches 100.0 F1).
                intensity: Intensity { strength: 1, second_attr_prob: 0.25 },
                pattern_weights: &[
                    (CorruptionPattern::Verbatim, 2.0),
                    (CorruptionPattern::Abbreviation, 1.5),
                    (CorruptionPattern::NumberFormat, 1.0),
                    (CorruptionPattern::Typos, 1.0),
                ],
                hard_negative_frac: 0.15,
                key_attrs: &[0],
            },
            DatasetKind::ItunesAmazon => GeneratorProfile {
                kind: self,
                domain: "Music",
                schema: &[
                    "song_name",
                    "artist_name",
                    "album_name",
                    "genre",
                    "price",
                    "copyright",
                    "time",
                    "released",
                ],
                n_pairs: 532,
                n_matches: 132,
                intensity: Intensity { strength: 1, second_attr_prob: 0.35 },
                pattern_weights: &[
                    (CorruptionPattern::Verbatim, 1.5),
                    (CorruptionPattern::ExtraTokens, 1.5),
                    (CorruptionPattern::NumberFormat, 1.5),
                    (CorruptionPattern::MissingAttr, 1.0),
                    (CorruptionPattern::Typos, 1.0),
                ],
                hard_negative_frac: 0.25,
                key_attrs: &[0, 1],
            },
            DatasetKind::Beer => GeneratorProfile {
                kind: self,
                domain: "Beer",
                schema: &["beer_name", "brew_factory_name", "style", "abv"],
                n_pairs: 450,
                n_matches: 68,
                intensity: Intensity { strength: 2, second_attr_prob: 0.4 },
                pattern_weights: &[
                    (CorruptionPattern::Typos, 1.5),
                    (CorruptionPattern::TokenDrop, 1.5),
                    (CorruptionPattern::Abbreviation, 1.0),
                    (CorruptionPattern::MissingAttr, 1.0),
                ],
                hard_negative_frac: 0.30,
                key_attrs: &[0],
            },
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Everything the builder needs to synthesize one benchmark.
#[derive(Debug, Clone)]
pub struct GeneratorProfile {
    /// Which benchmark this is.
    pub kind: DatasetKind,
    /// Domain string for Table II.
    pub domain: &'static str,
    /// Attribute names.
    pub schema: &'static [&'static str],
    /// Total labeled pairs (Table II).
    pub n_pairs: usize,
    /// Matching pairs among them (Table II).
    pub n_matches: usize,
    /// Corruption intensity applied to matching pairs.
    pub intensity: Intensity,
    /// Weighted corruption patterns for matching pairs.
    pub pattern_weights: &'static [(CorruptionPattern, f64)],
    /// Fraction of non-matching pairs drawn as hard negatives (sibling
    /// entities from the same family).
    pub hard_negative_frac: f64,
    /// Attribute indices that must never be blanked.
    pub key_attrs: &'static [usize],
}

impl GeneratorProfile {
    /// Draws a corruption pattern from the profile's weights.
    pub fn draw_pattern(&self, rng: &mut StdRng) -> CorruptionPattern {
        let total: f64 = self.pattern_weights.iter().map(|(_, w)| w).sum();
        let mut target = rng.gen_range(0.0..total);
        for &(p, w) in self.pattern_weights {
            if target < w {
                return p;
            }
            target -= w;
        }
        self.pattern_weights
            .last()
            .map(|&(p, _)| p)
            .unwrap_or(CorruptionPattern::Verbatim)
    }
}

/// Produces the attribute values of entity `(family, variant)` for a
/// dataset. Variant 0 is the canonical entity; other variants are
/// *siblings*: different real-world entities that share most surface
/// tokens (hard negatives). Fully deterministic in `(kind, family,
/// variant)` so the same entity can be re-materialized anywhere.
pub fn make_entity(kind: DatasetKind, family: u32, variant: u32) -> Vec<String> {
    // Family-deterministic picks keep siblings lexically close and the
    // whole factory reproducible without any RNG state.
    let pick = |pool: &[&str], salt: u32| -> String {
        let idx = (family
            .wrapping_mul(2_654_435_761)
            .wrapping_add(salt.wrapping_mul(40_503))) as usize
            % pool.len();
        pool[idx].to_owned()
    };
    match kind {
        DatasetKind::WalmartAmazon => {
            let brand = pick(vocab::BRANDS, 0);
            let qual = pick(vocab::PRODUCT_QUALIFIERS, 1);
            let noun = pick(vocab::PRODUCT_NOUNS, 2);
            let modelno = format!(
                "{}{}",
                brand.chars().next().unwrap_or('x').to_uppercase(),
                1000 + (family % 90) * 10 + variant
            );
            let price = format!("{}.{:02}", 20 + (family % 400) + variant * 7, family % 100);
            vec![
                format!("{brand} {qual} {noun} {modelno}"),
                pick(vocab::CATEGORIES, 3),
                brand,
                modelno,
                price,
            ]
        }
        DatasetKind::AbtBuy => {
            let brand = pick(vocab::BRANDS, 0);
            let noun = pick(vocab::PRODUCT_NOUNS, 1);
            let qual = pick(vocab::PRODUCT_QUALIFIERS, 2);
            let model = format!(
                "{}-{}",
                noun.chars().take(2).collect::<String>(),
                100 + family % 800 + variant
            );
            let price = format!("{}.00", 30 + (family % 300) + variant * 11);
            vec![
                format!("{brand} {noun} {model}"),
                format!(
                    "{qual} {brand} {noun} with {} warranty",
                    pick(vocab::PRODUCT_QUALIFIERS, 4)
                ),
                price,
            ]
        }
        DatasetKind::AmazonGoogle => {
            let maker = pick(vocab::SOFTWARE_MAKERS, 0);
            let product = pick(vocab::SOFTWARE_NOUNS, 1);
            // Siblings are adjacent versions of the same product — the
            // classic Amazon-Google confusion.
            let version = 2004 + (family % 4) + variant;
            let price = format!("{}.99", 19 + (family % 180) + variant * 10);
            vec![format!("{maker} {product} {version}"), maker, price]
        }
        DatasetKind::DblpScholar | DatasetKind::DblpAcm => {
            let topic = pick(vocab::PAPER_TOPICS, 0);
            let frame = pick(vocab::PAPER_FRAMES, 1);
            let title = frame.replace("{}", &topic);
            // Siblings: same group publishes a follow-up — same authors,
            // same venue family, adjacent year, slightly different title.
            let title = if variant == 0 {
                title
            } else {
                format!("{title} part {}", variant + 1)
            };
            let n_authors = 2 + (family % 3) as usize;
            let authors = (0..n_authors)
                .map(|i| {
                    format!(
                        "{}. {}",
                        pick(vocab::INITIALS, 10 + i as u32),
                        pick(vocab::SURNAMES, 20 + i as u32)
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            let venue = pick(vocab::VENUES, 2);
            let year = 1995 + (family % 13) + variant;
            vec![title, authors, venue, year.to_string()]
        }
        DatasetKind::FodorsZagats => {
            let stem = pick(vocab::RESTAURANT_STEMS, 0);
            let city = pick(vocab::CITIES, 1);
            let street = pick(vocab::STREETS, 2);
            // Sibling: the same chain's other location in the same city.
            let number = 100 + (family % 899) + variant * 412;
            let (f, v) = (family as u64, variant as u64);
            let phone = format!(
                "{}-{:03}-{:04}",
                200 + f % 700,
                100 + (f * 7) % 900,
                (1000 + f * 13 + v * 111) % 10000
            );
            vec![
                if variant == 0 {
                    stem.clone()
                } else {
                    format!("{stem} downtown")
                },
                format!("{number} {street}"),
                city,
                phone,
                pick(vocab::CUISINES, 3),
                format!("{}", (family % 5) + variant),
            ]
        }
        DatasetKind::ItunesAmazon => {
            let w1 = pick(vocab::SONG_WORDS, 0);
            let w2 = pick(vocab::SONG_WORDS, 7);
            let artist = pick(vocab::ARTISTS, 1);
            // Sibling: remix / live version of the same song.
            let song = if variant == 0 {
                format!("{w1} {w2}")
            } else {
                format!("{w1} {w2} (live)")
            };
            let album = format!("{} {}", pick(vocab::SONG_WORDS, 3), "sessions");
            let price = if family.is_multiple_of(2) {
                "$0.99"
            } else {
                "$1.29"
            }
            .to_owned();
            let (f, v) = (family as u64, variant as u64);
            let minutes = 2 + f % 4;
            let seconds = (f * 17 + v * 29) % 60;
            let year = 2005 + (f % 15) + v;
            let copyright = format!("(c) {year} {artist}");
            vec![
                song,
                artist,
                album,
                pick(vocab::GENRES, 4),
                price,
                copyright,
                format!("{minutes}:{seconds:02}"),
                format!(
                    "{} {}, {year}",
                    pick(&["january", "march", "june", "october"], 5),
                    1 + family % 28
                ),
            ]
        }
        DatasetKind::Beer => {
            let stem = pick(vocab::BEER_STEMS, 0);
            let brewery = pick(vocab::BREWERIES, 1);
            // Sibling: the brewery's double/imperial variant.
            let name = if variant == 0 {
                stem.clone()
            } else {
                format!("double {stem}")
            };
            let abv = format!("{}.{}%", 4 + family % 6 + variant * 2, family % 10);
            vec![name, brewery, pick(vocab::BEER_STYLES, 2), abv]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn table_ii_shapes() {
        // (name, attrs, pairs, matches) straight from Table II.
        let expected = [
            ("WA", 5, 10_242, 962),
            ("AB", 3, 9_575, 1_028),
            ("AG", 3, 11_460, 1_167),
            ("DS", 4, 28_707, 5_347),
            ("DA", 4, 12_363, 2_220),
            ("FZ", 6, 946, 110),
            ("IA", 8, 532, 132),
            ("Beer", 4, 450, 68),
        ];
        for (kind, (name, attrs, pairs, matches)) in DatasetKind::ALL.into_iter().zip(expected) {
            let p = kind.profile();
            assert_eq!(kind.short_name(), name);
            assert_eq!(p.schema.len(), attrs, "{name}");
            assert_eq!(p.n_pairs, pairs, "{name}");
            assert_eq!(p.n_matches, matches, "{name}");
            assert!(p.n_matches < p.n_pairs);
        }
    }

    #[test]
    fn entities_match_schema_arity() {
        for kind in DatasetKind::ALL {
            let p = kind.profile();
            for family in [0u32, 7, 123] {
                for variant in [0u32, 1] {
                    let vals = make_entity(kind, family, variant);
                    assert_eq!(vals.len(), p.schema.len(), "{kind} f{family} v{variant}");
                    assert!(!vals[0].trim().is_empty(), "{kind} empty key attr");
                }
            }
        }
    }

    #[test]
    fn siblings_share_surface_but_differ() {
        for kind in DatasetKind::ALL {
            let a = make_entity(kind, 42, 0);
            let b = make_entity(kind, 42, 1);
            assert_ne!(a, b, "{kind}: sibling identical to canonical");
            // Siblings share a decent fraction of first-attribute tokens.
            let sim = text_sim::jaccard_tokens(&a[0], &b[0]);
            assert!(sim > 0.2, "{kind}: sibling titles too unlike ({sim})");
        }
    }

    #[test]
    fn different_families_differ() {
        for kind in DatasetKind::ALL {
            let a = make_entity(kind, 1, 0);
            let b = make_entity(kind, 2, 0);
            assert_ne!(a, b, "{kind}");
        }
    }

    #[test]
    fn pattern_drawing_respects_support() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = DatasetKind::WalmartAmazon.profile();
        for _ in 0..200 {
            let drawn = p.draw_pattern(&mut rng);
            assert!(
                p.pattern_weights.iter().any(|&(pat, _)| pat == drawn),
                "drew pattern outside profile support"
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DatasetKind::WalmartAmazon.to_string(), "WA");
        assert_eq!(DatasetKind::Beer.to_string(), "Beer");
    }
}
