//! Dataset assembly: matching pairs, easy negatives and hard negatives.

use std::sync::Arc;

use er_core::{Dataset, EntityPair, LabeledPair, MatchLabel, PairId, Record, RecordId, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::perturb::{apply_pattern, CorruptionPattern, Intensity};
use crate::profiles::{make_entity, DatasetKind};

/// Generates one benchmark deterministically from `seed`.
///
/// The output matches Table II exactly in pair count, match count, schema
/// arity and domain. Pair composition:
///
/// * **Matches** — entity `(family, 0)` paired with a corrupted copy of
///   itself; the corruption pattern is drawn from the dataset profile.
/// * **Hard negatives** — entity `(family, 0)` paired with a *sibling*
///   `(family, 1)`: a different real-world entity sharing most surface
///   tokens (adjacent software versions, follow-up papers, live versions).
///   Siblings receive the same corruption patterns as matches, so "messy
///   but different" and "messy but same" pairs coexist and feature-space
///   clusters mix labels, as they do in the real benchmarks.
/// * **Easy negatives** — entities from two unrelated families, with only
///   light drift.
pub fn generate(kind: DatasetKind, seed: u64) -> Dataset {
    let profile = kind.profile();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A_6E4E_u64);

    let schema = Arc::new(
        Schema::new(profile.schema.iter().copied()).expect("profiles carry valid schemas"),
    );

    let n_matches = profile.n_matches;
    let n_negatives = profile.n_pairs - n_matches;
    let n_hard = (n_negatives as f64 * profile.hard_negative_frac).round() as usize;
    let n_easy = n_negatives - n_hard;

    let mut raw_pairs: Vec<(Vec<String>, Vec<String>, MatchLabel)> =
        Vec::with_capacity(profile.n_pairs);

    // Matching pairs: one per family, B-side corrupted per the profile.
    for family in 0..n_matches as u32 {
        let a = make_entity(kind, family, 0);
        let pattern = profile.draw_pattern(&mut rng);
        let b = apply_pattern(&a, pattern, profile.intensity, profile.key_attrs, &mut rng);
        raw_pairs.push((a, b, MatchLabel::Matching));
    }

    // Hard negatives: canonical vs sibling from the same family. They
    // receive the *same* corruption patterns as matches (at reduced
    // intensity) so surface noise cannot be used as a match/non-match cue
    // and feature-space clusters mix both labels — as they do in the real
    // benchmarks, where similarly formatted pairs are not similarly
    // labeled.
    let reduced = Intensity {
        strength: profile.intensity.strength.max(1),
        second_attr_prob: profile.intensity.second_attr_prob * 0.5,
    };
    for i in 0..n_hard as u32 {
        let family = rng.gen_range(0..(n_matches.max(1) as u32 * 2));
        let a = make_entity(kind, family, 0);
        let sibling_variant = 1 + (i % 2);
        let b_base = make_entity(kind, family, sibling_variant);
        let b = apply_pattern(
            &b_base,
            profile.draw_pattern(&mut rng),
            reduced,
            profile.key_attrs,
            &mut rng,
        );
        raw_pairs.push((a, b, MatchLabel::NonMatching));
    }

    // Easy negatives keep only light drift: unrelated records rarely share
    // formatting accidents.
    let light = Intensity { strength: 1, second_attr_prob: 0.2 };

    // Easy negatives: two unrelated families.
    for _ in 0..n_easy {
        let fa = rng.gen_range(0..u32::MAX / 2);
        let fb = loop {
            let f = rng.gen_range(0..u32::MAX / 2);
            if f != fa {
                break f;
            }
        };
        let a = make_entity(kind, fa, 0);
        let b_base = make_entity(kind, fb, 0);
        let b = apply_pattern(
            &b_base,
            light_pattern(&mut rng),
            light,
            profile.key_attrs,
            &mut rng,
        );
        raw_pairs.push((a, b, MatchLabel::NonMatching));
    }

    // Shuffle so labels are not positionally encoded, then materialize.
    shuffle(&mut raw_pairs, &mut rng);
    let pairs: Vec<LabeledPair> = raw_pairs
        .into_iter()
        .enumerate()
        .map(|(i, (va, vb, label))| {
            let a = Arc::new(
                Record::new(RecordId::a(i as u32), Arc::clone(&schema), va)
                    .expect("factory arity matches schema"),
            );
            let b = Arc::new(
                Record::new(RecordId::b(i as u32), Arc::clone(&schema), vb)
                    .expect("factory arity matches schema"),
            );
            LabeledPair::new(
                EntityPair::new(PairId(i as u32), a, b).expect("records share schema"),
                label,
            )
        })
        .collect();

    Dataset::new(kind.short_name(), profile.domain, schema, pairs)
        .expect("profiles produce non-empty datasets")
}

/// Light corruption for negatives: mostly verbatim with occasional drift.
fn light_pattern(rng: &mut StdRng) -> CorruptionPattern {
    match rng.gen_range(0..10u8) {
        0 => CorruptionPattern::Typos,
        1 => CorruptionPattern::NumberFormat,
        2 => CorruptionPattern::TokenDrop,
        _ => CorruptionPattern::Verbatim,
    }
}

fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use text_sim::jaccard_tokens;

    #[test]
    fn all_datasets_match_table_ii() {
        for kind in DatasetKind::ALL {
            let d = generate(kind, 7);
            let p = kind.profile();
            let stats = d.stats();
            assert_eq!(stats.pairs, p.n_pairs, "{kind}");
            assert_eq!(stats.matches, p.n_matches, "{kind}");
            assert_eq!(stats.attributes, p.schema.len(), "{kind}");
            assert_eq!(stats.domain, p.domain, "{kind}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(DatasetKind::Beer, 11);
        let b = generate(DatasetKind::Beer, 11);
        for (pa, pb) in a.pairs().iter().zip(b.pairs()) {
            assert_eq!(pa.pair.serialize(), pb.pair.serialize());
            assert_eq!(pa.label, pb.label);
        }
        let c = generate(DatasetKind::Beer, 12);
        let differs = a
            .pairs()
            .iter()
            .zip(c.pairs())
            .any(|(pa, pc)| pa.pair.serialize() != pc.pair.serialize());
        assert!(differs, "different seeds produced identical data");
    }

    #[test]
    fn labels_not_positionally_encoded() {
        let d = generate(DatasetKind::FodorsZagats, 3);
        let first_half_matches = d.pairs()[..d.len() / 2]
            .iter()
            .filter(|p| p.label.is_match())
            .count();
        let total_matches = d.stats().matches;
        // After shuffling, roughly half the matches are in each half.
        assert!(first_half_matches > total_matches / 5);
        assert!(first_half_matches < total_matches * 4 / 5);
    }

    #[test]
    fn matches_are_textually_closer_than_easy_negatives() {
        let d = generate(DatasetKind::DblpAcm, 5);
        let mut match_sim = 0.0;
        let mut match_n = 0usize;
        let mut non_sim = 0.0;
        let mut non_n = 0usize;
        for p in d.pairs().iter().take(2000) {
            let s = jaccard_tokens(
                p.pair.a().value(0).unwrap_or(""),
                p.pair.b().value(0).unwrap_or(""),
            );
            if p.label.is_match() {
                match_sim += s;
                match_n += 1;
            } else {
                non_sim += s;
                non_n += 1;
            }
        }
        let match_avg = match_sim / match_n.max(1) as f64;
        let non_avg = non_sim / non_n.max(1) as f64;
        assert!(
            match_avg > non_avg + 0.15,
            "matches ({match_avg:.3}) not separable from negatives ({non_avg:.3})"
        );
    }

    #[test]
    fn hard_negatives_exist() {
        // Some non-matching pairs must look similar (title Jaccard > 0.5):
        // those are the hard negatives that make the benchmark interesting.
        let d = generate(DatasetKind::AmazonGoogle, 5);
        let hard = d
            .pairs()
            .iter()
            .filter(|p| !p.label.is_match())
            .filter(|p| {
                jaccard_tokens(
                    p.pair.a().value(0).unwrap_or(""),
                    p.pair.b().value(0).unwrap_or(""),
                ) > 0.5
            })
            .count();
        assert!(hard > 100, "only {hard} hard negatives in AG");
    }

    #[test]
    fn key_attribute_never_blank_on_either_side() {
        for kind in [DatasetKind::WalmartAmazon, DatasetKind::Beer] {
            let d = generate(kind, 9);
            for p in d.pairs() {
                assert!(
                    !p.pair.a().is_missing(0),
                    "{kind}: blank key attr on A side"
                );
                assert!(
                    !p.pair.b().is_missing(0),
                    "{kind}: blank key attr on B side"
                );
            }
        }
    }

    #[test]
    fn split_sizes_follow_paper() {
        let d = generate(DatasetKind::ItunesAmazon, 2);
        let split = d.split_3_1_1(1).unwrap();
        // 532 pairs -> 106 valid, 106 test, 320 train.
        assert_eq!(split.valid.len(), 106);
        assert_eq!(split.test.len(), 106);
        assert_eq!(split.train.len(), 320);
    }
}
