//! CSV import/export of labeled pair datasets.
//!
//! Format: header `label,a_<attr1>,...,a_<attrm>,b_<attr1>,...,b_<attrm>`,
//! then one row per pair with RFC-4180 quoting. Lets generated benchmarks
//! be inspected, diffed and re-imported (or real Magellan CSVs be loaded
//! when available).

use std::sync::Arc;

use er_core::{
    Dataset, EntityPair, ErError, LabeledPair, MatchLabel, PairId, Record, RecordId, Schema,
};

/// Serializes a dataset to CSV text.
pub fn to_csv(dataset: &Dataset) -> String {
    let schema = dataset.schema();
    let mut out = String::new();
    out.push_str("label");
    for side in ["a", "b"] {
        for attr in schema.attributes() {
            out.push(',');
            out.push_str(&format!("{side}_{attr}"));
        }
    }
    out.push('\n');
    for pair in dataset.pairs() {
        out.push_str(if pair.label.is_match() { "1" } else { "0" });
        for rec in [pair.pair.a(), pair.pair.b()] {
            for v in rec.values() {
                out.push(',');
                out.push_str(&quote(v));
            }
        }
        out.push('\n');
    }
    out
}

/// Errors raised while reading CSV datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The header row is missing or malformed.
    BadHeader(String),
    /// A data row has the wrong number of fields.
    BadRow {
        /// 1-based row number (header = row 1).
        row: usize,
        /// Expected field count.
        expected: usize,
        /// Found field count.
        got: usize,
    },
    /// A label field was not `0` or `1`.
    BadLabel {
        /// 1-based row number.
        row: usize,
        /// Offending text.
        text: String,
    },
    /// The reassembled dataset failed validation.
    Model(ErError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader(h) => write!(f, "malformed CSV header: {h:?}"),
            CsvError::BadRow { row, expected, got } => {
                write!(f, "row {row}: expected {expected} fields, got {got}")
            }
            CsvError::BadLabel { row, text } => {
                write!(f, "row {row}: label must be 0 or 1, got {text:?}")
            }
            CsvError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text produced by [`to_csv`] back into a dataset.
pub fn from_csv(name: &str, domain: &str, text: &str) -> Result<Dataset, CsvError> {
    let mut rows = text.lines().enumerate();
    let (_, header) = rows
        .next()
        .ok_or_else(|| CsvError::BadHeader("empty input".into()))?;
    let columns = split_row(header);
    if columns.len() < 3 || columns[0] != "label" || !(columns.len() - 1).is_multiple_of(2) {
        return Err(CsvError::BadHeader(header.to_owned()));
    }
    let arity = (columns.len() - 1) / 2;
    let attr_names: Vec<String> = columns[1..=arity]
        .iter()
        .map(|c| c.strip_prefix("a_").unwrap_or(c).to_owned())
        .collect();
    let schema = Arc::new(Schema::new(attr_names).map_err(CsvError::Model)?);

    let mut pairs = Vec::new();
    for (line_idx, line) in rows {
        if line.trim().is_empty() {
            continue;
        }
        let row_no = line_idx + 1;
        let fields = split_row(line);
        if fields.len() != 1 + 2 * arity {
            return Err(CsvError::BadRow {
                row: row_no,
                expected: 1 + 2 * arity,
                got: fields.len(),
            });
        }
        let label = match fields[0].as_str() {
            "1" => MatchLabel::Matching,
            "0" => MatchLabel::NonMatching,
            other => return Err(CsvError::BadLabel { row: row_no, text: other.to_owned() }),
        };
        let idx = pairs.len() as u32;
        let a = Arc::new(
            Record::new(
                RecordId::a(idx),
                Arc::clone(&schema),
                fields[1..=arity].to_vec(),
            )
            .map_err(CsvError::Model)?,
        );
        let b = Arc::new(
            Record::new(
                RecordId::b(idx),
                Arc::clone(&schema),
                fields[1 + arity..].to_vec(),
            )
            .map_err(CsvError::Model)?,
        );
        pairs.push(LabeledPair::new(
            EntityPair::new(PairId(idx), a, b).map_err(CsvError::Model)?,
            label,
        ));
    }
    Dataset::new(name, domain, schema, pairs).map_err(CsvError::Model)
}

/// RFC-4180 quoting: wrap in quotes when the value contains a comma,
/// quote or newline; double interior quotes.
fn quote(v: &str) -> String {
    if v.contains(',') || v.contains('"') || v.contains('\n') {
        format!("\"{}\"", v.replace('"', "\"\""))
    } else {
        v.to_owned()
    }
}

/// Splits one CSV row honoring quotes.
fn split_row(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            other => cur.push(other),
        }
    }
    fields.push(cur);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, DatasetKind};

    #[test]
    fn roundtrip_preserves_everything() {
        let d = generate(DatasetKind::Beer, 3);
        let csv = to_csv(&d);
        let back = from_csv("Beer", "Beer", &csv).unwrap();
        assert_eq!(back.len(), d.len());
        assert_eq!(back.stats().matches, d.stats().matches);
        for (orig, parsed) in d.pairs().iter().zip(back.pairs()) {
            assert_eq!(orig.pair.a().values(), parsed.pair.a().values());
            assert_eq!(orig.pair.b().values(), parsed.pair.b().values());
            assert_eq!(orig.label, parsed.label);
        }
    }

    #[test]
    fn quoting_handles_commas_and_quotes() {
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(split_row("\"a,b\",c"), vec!["a,b", "c"]);
        assert_eq!(split_row("\"say \"\"hi\"\"\",x"), vec!["say \"hi\"", "x"]);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            from_csv("X", "d", "not,a,header\n"),
            Err(CsvError::BadHeader(_))
        ));
        assert!(matches!(
            from_csv("X", "d", ""),
            Err(CsvError::BadHeader(_))
        ));
    }

    #[test]
    fn bad_row_rejected() {
        let csv = "label,a_t,b_t\n1,only_two\n";
        assert!(matches!(
            from_csv("X", "d", csv),
            Err(CsvError::BadRow { row: 2, expected: 3, got: 2 })
        ));
    }

    #[test]
    fn bad_label_rejected() {
        let csv = "label,a_t,b_t\nmaybe,x,y\n";
        assert!(matches!(
            from_csv("X", "d", csv),
            Err(CsvError::BadLabel { row: 2, .. })
        ));
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "label,a_t,b_t\n1,x,y\n\n0,p,q\n";
        let d = from_csv("X", "d", csv).unwrap();
        assert_eq!(d.len(), 2);
    }
}
