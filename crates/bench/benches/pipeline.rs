//! End-to-end pipeline benchmarks: one full BatchER run per design cell on
//! a small benchmark, plus the simulated-LLM call path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use batcher_core::{BatchingStrategy, RunConfig, SelectionStrategy};
use llm::{ChatApi, ChatRequest, ModelKind, SimLlm};

fn bench_full_runs(c: &mut Criterion) {
    let dataset = datagen::generate(datagen::DatasetKind::Beer, 1);
    let api = SimLlm::new();
    let mut group = c.benchmark_group("end_to_end_beer");
    group.sample_size(10);
    for (name, config) in [
        ("best_design", RunConfig::best_design()),
        ("standard_prompting", RunConfig::standard_prompting()),
        (
            "random_topk_batch",
            RunConfig {
                batching: BatchingStrategy::Random,
                selection: SelectionStrategy::TopKBatch,
                ..RunConfig::default()
            },
        ),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| batcher_core::run(black_box(&dataset), &api, config))
        });
    }
    group.finish();
}

fn bench_llm_call(c: &mut Criterion) {
    let api = SimLlm::new();
    let d = datagen::generate(datagen::DatasetKind::Beer, 1);
    let demos: Vec<&er_core::LabeledPair> = d.pairs().iter().take(8).collect();
    let questions: Vec<String> = d.pairs()[8..16]
        .iter()
        .map(|p| p.pair.serialize())
        .collect();
    let prompt = batcher_core::build_batch_prompt(
        &batcher_core::task_description("Beer"),
        &demos,
        &questions,
    );
    c.bench_function("sim_llm_batch8_completion", |bench| {
        bench.iter(|| {
            api.complete(&ChatRequest::new(
                ModelKind::Gpt35Turbo0301,
                black_box(prompt.clone()),
                9,
            ))
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_full_runs, bench_llm_call);
criterion_main!(benches);
