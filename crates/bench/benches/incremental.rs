//! Incremental-planner benchmark: replay an arrival/retire trace over a
//! large standing question pool and compare the cost of an incremental
//! epoch against a full re-plan.
//!
//! The workload mirrors the serving layer's configuration — semantic
//! features (64-dim), diversity batching, covering selection — where a
//! from-scratch plan pays feature extraction, two distance percentiles,
//! the DBSCAN region-query sweep and the pool-coverage sweep on every
//! pass. The incremental [`PlanState`] keeps all of that cached and
//! re-runs only the combinatorial passes, so a ≤1% delta re-plan should
//! be ≥5x faster than the from-scratch pass (asserted in full mode).
//!
//! Every measured epoch is also checked for **plan equivalence** against
//! a from-scratch plan with the frozen thresholds pinned (quick mode:
//! every epoch; full mode: first and last epoch — the randomized harness
//! in `batcher-core` covers the rest). Checked epochs are additionally
//! replayed under the single-pivot `IndexMode::Sweep` reference: the
//! metric index accelerating the ε-graph inserts and coverage scans is
//! exact, so forcing the sweep must reproduce the epoch bit-for-bit.
//! The snapshot records the run's index counters (builds, pruned
//! fraction) alongside the timings.
//!
//! Runs in quick mode (small pool, used by `cargo test` and CI smoke)
//! and full mode (10k questions) under `cargo bench`; both write a
//! `BENCH_incremental.json` snapshot (path override:
//! `BENCH_INCREMENTAL_OUT`).

use std::time::Instant;

use batcher_core::incremental::{PlanKind, PlanState};
use batcher_core::{
    plan_with_prepared_pool, plan_with_prepared_pool_pinned, BatchPlanConfig, BatchingStrategy,
    ClusteringKind, DistanceKind, ExtractorKind, PlanThresholds, PreparedPool, SelectionStrategy,
};
use bench::synth::{synth_pairs, Rng};
use embed::index::{stats as index_stats, with_index_mode, IndexMode};
use er_core::{EntityPair, LabeledPair};

fn sorted_refs(live: &[(u64, EntityPair)]) -> Vec<&EntityPair> {
    let mut sorted: Vec<&(u64, EntityPair)> = live.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    sorted.iter().map(|(_, p)| p).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick") || !args.iter().any(|a| a == "--bench");
    let (n_questions, n_pool, epochs) = if quick {
        (1_500, 300, 3)
    } else {
        (10_000, 2_000, 5)
    };
    // ≤1% delta per epoch: half arrivals, half retirements.
    let delta = (n_questions / 100).max(2);
    let spare = delta / 2 * epochs;
    let seed = 42u64;

    // The serving layer's planning configuration (er-service plans with
    // semantic features over arbitrary client schemas).
    let config = BatchPlanConfig {
        batching: BatchingStrategy::Diversity,
        selection: SelectionStrategy::Covering,
        extractor: ExtractorKind::Semantic,
        distance: DistanceKind::Euclidean,
        clustering: ClusteringKind::Dbscan,
        batch_size: 8,
        k: 8,
        cover_percentile: 8.0,
        seed,
    };

    let all = synth_pairs(n_questions + n_pool + spare, seed);
    let (pool_pairs, rest) = all.split_at(n_pool);
    let pool_refs: Vec<&LabeledPair> = pool_pairs.iter().collect();
    let prepared = PreparedPool::prepare(&pool_refs, config.extractor, config.distance);

    let mut state = PlanState::from_prepared(prepared.clone(), config);
    let mut live: Vec<(u64, EntityPair)> = Vec::new();
    for (i, p) in rest[..n_questions].iter().enumerate() {
        let key = i as u64;
        state.insert(key, &p.pair);
        live.push((key, p.pair.clone()));
    }
    let mut next_key = n_questions as u64;
    let mut spare_pairs: Vec<EntityPair> =
        rest[n_questions..].iter().map(|p| p.pair.clone()).collect();

    // Epoch 0: the full plan that freezes thresholds and builds caches.
    let started = Instant::now();
    let first = state.plan(seed);
    let initial_full_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(first.kind, PlanKind::Full);

    // From-scratch comparator: what a non-incremental service re-runs on
    // every flush (extraction + thresholds + sweeps + selection), best of
    // two passes.
    let refs = sorted_refs(&live);
    let mut from_scratch_ms = f64::INFINITY;
    for _ in 0..2 {
        let started = Instant::now();
        let plan = plan_with_prepared_pool(&refs, &prepared, &config);
        from_scratch_ms = from_scratch_ms.min(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            plan, first.plan,
            "full PlanState epoch != from-scratch plan"
        );
    }
    drop(refs);

    // The arrival/retire trace: per epoch retire delta/2 live questions,
    // insert delta/2 fresh ones, re-plan, measure.
    let mut rng = Rng(seed | 1);
    let mut incremental_ms_total = 0.0f64;
    let mut incremental_ms_worst = 0.0f64;
    let mut checked = 0usize;
    let idx_before = index_stats();
    for e in 0..epochs {
        let check_epoch = quick || e == 0 || e == epochs - 1;
        // The timer covers the whole epoch the serving path would pay:
        // applying the delta (per-insert extraction + cache-extension
        // scans, retirements) *and* the re-plan — not just the plan call.
        let started = Instant::now();
        for _ in 0..delta / 2 {
            let at = rng.below(live.len());
            let (key, _) = live.swap_remove(at);
            assert!(state.retire(key));
        }
        for _ in 0..delta / 2 {
            let pair = spare_pairs.pop().expect("spare bank exhausted");
            assert!(state.insert(next_key, &pair));
            live.push((next_key, pair));
            next_key += 1;
        }

        let epoch_seed = seed ^ (0x9E37 + e as u64 * 131);
        let epoch = state.plan(epoch_seed);
        let ms = started.elapsed().as_secs_f64() * 1e3;
        incremental_ms_total += ms;
        incremental_ms_worst = incremental_ms_worst.max(ms);
        assert_eq!(
            epoch.kind,
            PlanKind::Incremental,
            "a {delta}-question delta over {n_questions} must re-plan incrementally"
        );

        // Plan equivalence against the pinned from-scratch plan, plus
        // index-mode invariance: a re-plan of the same state under the
        // single-pivot sweep reference must match the pivot table
        // exactly (both outside the timed section).
        if check_epoch {
            let stats = state.stats();
            let pinned = PlanThresholds { eps: stats.eps, cover_t: stats.cover_t };
            let refs = sorted_refs(&live);
            let epoch_config = BatchPlanConfig { seed: epoch_seed, ..config };
            let expect = plan_with_prepared_pool_pinned(&refs, &prepared, &epoch_config, pinned);
            assert_eq!(
                epoch.plan, expect,
                "epoch {e} diverged from pinned from-scratch"
            );
            let replay_seed = epoch_seed ^ 0xA5A5;
            let auto_replay = state.clone().plan(replay_seed);
            let sweep_replay =
                with_index_mode(IndexMode::Sweep, || state.clone().plan(replay_seed));
            assert_eq!(
                auto_replay, sweep_replay,
                "epoch {e}: index mode changed the incremental plan"
            );
            checked += 1;
        }
    }
    let incremental_ms = incremental_ms_total / epochs as f64;
    let speedup = from_scratch_ms / incremental_ms;
    let worst_speedup = from_scratch_ms / incremental_ms_worst;
    if !quick {
        assert!(
            worst_speedup >= 5.0,
            "incremental re-plan speedup {worst_speedup:.1}x below the 5x floor \
             (incremental worst {incremental_ms_worst:.1} ms vs full {from_scratch_ms:.1} ms)"
        );
    }

    let stats = state.stats();
    let idx = index_stats().delta_since(&idx_before);
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"bench\": \"incremental_replanning\",\n  \"mode\": \"{}\",\n  \"questions\": {},\n  \"pool\": {},\n  \"delta_per_epoch\": {},\n  \"epochs\": {},\n  \"threads\": {},\n  \"from_scratch_ms\": {:.2},\n  \"initial_full_ms\": {:.2},\n  \"incremental_avg_ms\": {:.2},\n  \"incremental_worst_ms\": {:.2},\n  \"speedup_avg\": {:.2},\n  \"speedup_worst\": {:.2},\n  \"equivalence_checked_epochs\": {},\n  \"full_plans\": {},\n  \"incremental_plans\": {},\n  \"index_builds\": {},\n  \"index_queries\": {},\n  \"index_pruned_fraction\": {:.4}\n}}\n",
        if quick { "quick" } else { "full" },
        n_questions,
        n_pool,
        delta,
        epochs,
        threads,
        from_scratch_ms,
        initial_full_ms,
        incremental_ms,
        incremental_ms_worst,
        speedup,
        worst_speedup,
        checked,
        stats.full_plans,
        stats.incremental_plans,
        idx.builds,
        idx.queries,
        idx.pruned_fraction(),
    );
    let out_path = std::env::var("BENCH_INCREMENTAL_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json").to_owned()
    });
    std::fs::write(&out_path, &json).expect("write BENCH_incremental.json");
    println!("{json}");
    println!(
        "incremental {}q/{}p delta {}: from-scratch {from_scratch_ms:.1} ms, incremental avg \
         {incremental_ms:.1} ms / worst {incremental_ms_worst:.1} ms ({speedup:.1}x avg, \
         {worst_speedup:.1}x worst) -> {out_path}",
        n_questions, n_pool, delta
    );
}
