//! End-to-end planning benchmark: scalar baseline vs the kernel layer.
//!
//! Measures one full plan pass — feature extraction → percentile
//! threshold → DBSCAN → diversity batches → covering selection — on a
//! synthetic workload, three ways:
//!
//! * **scalar baseline** — an in-bench replica of the pre-kernel
//!   pipeline: `Vec<Vec<f64>>` features, full-scan DBSCAN region
//!   queries, full-sort percentile, per-pair `sqrt` covering sweeps, all
//!   serial. Kept here (not in the library) so the speedup stays
//!   measurable against the real historical path.
//! * **kernel, serial** — `batcher_core::plan_question_batches` pinned to
//!   one thread: isolates the contiguous-layout/kernel win.
//! * **kernel, parallel** — the production path.
//!
//! Runs in quick mode (small workload, one iteration) under `cargo test`
//! and in full mode (10k questions, best of 3) under `cargo bench`; both
//! write a `BENCH_planning.json` snapshot (path override:
//! `BENCH_PLANNING_OUT`).

use std::time::Instant;

use batcher_core::batching::{BatchingStrategy, ClusteringKind};
use batcher_core::plan::{plan_question_batches, BatchPlanConfig};
use batcher_core::selection::SelectionStrategy;
use batcher_core::{DistanceKind, ExtractorKind};
use bench::synth::synth_pairs;
use er_core::{EntityPair, LabeledPair};

// ---------------------------------------------------------------------
// Scalar baseline: the pre-kernel planning pipeline, verbatim semantics
// ---------------------------------------------------------------------

mod baseline {
    use super::*;
    use text_sim::normalize;

    fn euclid(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    /// The pre-kernel two-row DP Levenshtein (the library has since moved
    /// to Myers' bit-parallel algorithm; the baseline keeps the
    /// historical cost).
    fn dp_levenshtein(a: &str, b: &str) -> usize {
        let a_chars: Vec<char> = a.chars().collect();
        let b_chars: Vec<char> = b.chars().collect();
        let (short, long) = if a_chars.len() <= b_chars.len() {
            (&a_chars, &b_chars)
        } else {
            (&b_chars, &a_chars)
        };
        if short.is_empty() {
            return long.len();
        }
        let mut prev: Vec<usize> = (0..=short.len()).collect();
        let mut cur: Vec<usize> = vec![0; short.len() + 1];
        for (i, &lc) in long.iter().enumerate() {
            cur[0] = i + 1;
            for (j, &sc) in short.iter().enumerate() {
                let sub_cost = usize::from(lc != sc);
                cur[j + 1] = (prev[j] + sub_cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[short.len()]
    }

    fn dp_levenshtein_ratio(a: &str, b: &str) -> f64 {
        let s = a.chars().count() + b.chars().count();
        if s == 0 {
            return 1.0;
        }
        1.0 - dp_levenshtein(a, b) as f64 / s as f64
    }

    pub fn extract(pairs: &[&EntityPair]) -> Vec<Vec<f64>> {
        pairs
            .iter()
            .map(|p| {
                let m = p.a().schema().arity();
                (0..m)
                    .map(|i| {
                        let va = normalize(p.a().value(i).unwrap_or(""));
                        let vb = normalize(p.b().value(i).unwrap_or(""));
                        if va.is_empty() && vb.is_empty() {
                            0.5
                        } else if va.is_empty() || vb.is_empty() {
                            0.0
                        } else {
                            dp_levenshtein_ratio(&va, &vb)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Full-sort percentile with the historical `(j + 1) % n` remap.
    pub fn distance_percentile(
        vectors: &[Vec<f64>],
        pct: f64,
        max_samples: usize,
        seed: u64,
    ) -> f64 {
        let n = vectors.len();
        if n < 2 {
            return 0.0;
        }
        let total = n * (n - 1) / 2;
        let mut samples: Vec<f64> = Vec::new();
        if total <= max_samples {
            for i in 0..n {
                for j in (i + 1)..n {
                    samples.push(euclid(&vectors[i], &vectors[j]));
                }
            }
        } else {
            let mut state = seed | 1;
            let mut step = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..max_samples {
                let i = (step() % n as u64) as usize;
                let mut j = (step() % n as u64) as usize;
                if i == j {
                    j = (j + 1) % n;
                }
                samples.push(euclid(&vectors[i], &vectors[j]));
            }
        }
        samples.sort_by(f64::total_cmp);
        let rank = ((pct / 100.0) * (samples.len() - 1) as f64).round() as usize;
        samples[rank.min(samples.len() - 1)]
    }

    /// Largest-first diversity batching over cluster groups (the rng-free
    /// historical logic).
    fn diversity_batches(mut remaining: Vec<Vec<usize>>, b: usize) -> Vec<Vec<usize>> {
        remaining.retain(|c| !c.is_empty());
        let mut batches = Vec::new();
        while remaining.iter().any(|c| !c.is_empty()) {
            remaining.sort_by_key(|c| std::cmp::Reverse(c.len()));
            let mut batch = Vec::with_capacity(b);
            if remaining.len() >= b {
                for cluster in remaining.iter_mut().take(b) {
                    if let Some(q) = cluster.pop() {
                        batch.push(q);
                    }
                }
            } else {
                let mut ci = 0usize;
                while batch.len() < b && remaining.iter().any(|c| !c.is_empty()) {
                    let idx = ci % remaining.len();
                    if let Some(q) = remaining[idx].pop() {
                        batch.push(q);
                    }
                    ci += 1;
                }
            }
            remaining.retain(|c| !c.is_empty());
            if !batch.is_empty() {
                batches.push(batch);
            }
        }
        batches
    }

    /// The seed repository's lazy-greedy weighted cover, verbatim: stale
    /// heap entries refresh by rescanning the candidate's full coverage
    /// list (the library now maintains gains decrementally through an
    /// inverted index).
    fn greedy_cover_scalar<W: Fn(usize) -> f64>(
        n_elements: usize,
        coverage: &[Vec<u32>],
        weight: W,
    ) -> Vec<usize> {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;
        struct Entry {
            ratio: f64,
            candidate: usize,
            stamp: u64,
        }
        impl PartialEq for Entry {
            fn eq(&self, other: &Self) -> bool {
                self.ratio == other.ratio
            }
        }
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                self.ratio.total_cmp(&other.ratio)
            }
        }
        let mut covered = vec![false; n_elements];
        let mut selected = Vec::new();
        let mut stamp = 0u64;
        let gain = |covered: &[bool], d: usize| -> usize {
            coverage[d]
                .iter()
                .filter(|&&e| !covered[e as usize])
                .count()
        };
        let mut heap: BinaryHeap<Entry> = coverage
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(d, c)| Entry {
                ratio: c.len() as f64 / weight(d).max(f64::MIN_POSITIVE),
                candidate: d,
                stamp: 0,
            })
            .collect();
        while let Some(top) = heap.pop() {
            let g = gain(&covered, top.candidate);
            if g == 0 {
                continue;
            }
            let fresh_ratio = g as f64 / weight(top.candidate).max(f64::MIN_POSITIVE);
            let is_fresh =
                top.stamp == stamp || heap.peek().is_none_or(|next| fresh_ratio >= next.ratio);
            if !is_fresh {
                heap.push(Entry { ratio: fresh_ratio, candidate: top.candidate, stamp });
                continue;
            }
            for &e in &coverage[top.candidate] {
                covered[e as usize] = true;
            }
            selected.push(top.candidate);
            stamp += 1;
        }
        selected
    }

    /// The seed repository's DBSCAN, verbatim: brute-force O(n) region
    /// queries as `Vec<usize>`, unfiltered BFS queue (the library has
    /// since moved to the pivot-window kernel index and a pruned queue —
    /// the baseline keeps the historical costs).
    fn dbscan_scalar(points: &[Vec<f64>], eps: f64, min_pts: usize) -> cluster::Clustering {
        const UNVISITED: usize = usize::MAX;
        const NOISE: usize = usize::MAX - 1;
        let n = points.len();
        let mut labels = vec![UNVISITED; n];
        let mut next_cluster = 0usize;
        let neighbors = |i: usize| -> Vec<usize> {
            (0..n)
                .filter(|&j| euclid(&points[i], &points[j]) <= eps)
                .collect()
        };
        for i in 0..n {
            if labels[i] != UNVISITED {
                continue;
            }
            let seeds = neighbors(i);
            if seeds.len() < min_pts {
                labels[i] = NOISE;
                continue;
            }
            let cid = next_cluster;
            next_cluster += 1;
            labels[i] = cid;
            let mut queue: Vec<usize> = seeds;
            let mut qi = 0;
            while qi < queue.len() {
                let p = queue[qi];
                qi += 1;
                if labels[p] == NOISE {
                    labels[p] = cid;
                }
                if labels[p] != UNVISITED {
                    continue;
                }
                labels[p] = cid;
                let p_neighbors = neighbors(p);
                if p_neighbors.len() >= min_pts {
                    queue.extend(p_neighbors);
                }
            }
        }
        for label in labels.iter_mut() {
            if *label == NOISE || *label == UNVISITED {
                *label = next_cluster;
                next_cluster += 1;
            }
        }
        cluster::Clustering { assignment: labels, n_clusters: next_cluster }
    }

    /// The whole scalar plan: percentile ε → full-scan DBSCAN → diversity
    /// batches → covering selection with per-pair `sqrt` sweeps.
    pub fn plan(
        questions: &[Vec<f64>],
        pool: &[Vec<f64>],
        pool_tokens: &[f64],
        batch_size: usize,
        seed: u64,
    ) -> (Vec<Vec<usize>>, Vec<Vec<usize>>, Vec<usize>) {
        // Batching stage.
        let eps = distance_percentile(questions, 15.0, 200_000, seed).max(1e-9);
        let clusters = dbscan_scalar(questions, eps, 3);
        let batches = diversity_batches(clusters.groups(), batch_size);

        // Covering selection stage.
        let t = distance_percentile(questions, 8.0, 200_000, seed).max(1e-9);
        let coverage: Vec<Vec<u32>> = pool
            .iter()
            .map(|d| {
                questions
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| euclid(d, q) < t)
                    .map(|(qi, _)| qi as u32)
                    .collect()
            })
            .collect();
        let demo_set = greedy_cover_scalar(questions.len(), &coverage, |_| 1.0);
        let per_batch: Vec<Vec<usize>> = batches
            .iter()
            .map(|batch| {
                let batch_cov: Vec<Vec<u32>> = demo_set
                    .iter()
                    .map(|&d| {
                        batch
                            .iter()
                            .enumerate()
                            .filter(|(_, &q)| euclid(&pool[d], &questions[q]) < t)
                            .map(|(qi, _)| qi as u32)
                            .collect()
                    })
                    .collect();
                let picked =
                    greedy_cover_scalar(batch.len(), &batch_cov, |i| pool_tokens[demo_set[i]]);
                let mut demos: Vec<usize> = picked.iter().map(|&i| demo_set[i]).collect();
                if demos.is_empty() && !demo_set.is_empty() {
                    let nearest = demo_set
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            let da = batch
                                .iter()
                                .map(|&q| euclid(&pool[a], &questions[q]))
                                .fold(f64::INFINITY, f64::min);
                            let db = batch
                                .iter()
                                .map(|&q| euclid(&pool[b], &questions[q]))
                                .fold(f64::INFINITY, f64::min);
                            da.total_cmp(&db)
                        })
                        .expect("demo set non-empty");
                    demos.push(nearest);
                }
                demos
            })
            .collect();
        (batches, per_batch, demo_set)
    }
}

fn assert_partition(batches: &[Vec<usize>], n: usize) {
    let mut seen: Vec<usize> = batches.iter().flatten().copied().collect();
    seen.sort_unstable();
    assert_eq!(
        seen,
        (0..n).collect::<Vec<_>>(),
        "plan does not partition the question set"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick") || !args.iter().any(|a| a == "--bench");
    let (n_questions, n_pool, iters) = if quick {
        (1500, 300, 1)
    } else {
        (10_000, 2_000, 3)
    };
    let batch_size = 8usize;
    let seed = 42u64;

    let all = synth_pairs(n_questions + n_pool, seed);
    let (pool_pairs, question_pairs) = all.split_at(n_pool);
    let questions: Vec<&EntityPair> = question_pairs.iter().map(|p| &p.pair).collect();
    let pool: Vec<&LabeledPair> = pool_pairs.iter().collect();
    let config = BatchPlanConfig {
        batching: BatchingStrategy::Diversity,
        selection: SelectionStrategy::Covering,
        extractor: ExtractorKind::LevenshteinRatio,
        distance: DistanceKind::Euclidean,
        clustering: ClusteringKind::Dbscan,
        batch_size,
        k: 8,
        cover_percentile: 8.0,
        seed,
    };

    // Scalar baseline (extraction included — it is part of the plan pass).
    let mut baseline_ms = f64::INFINITY;
    let mut baseline_batches = 0usize;
    let mut baseline_labeled = 0usize;
    for _ in 0..iters {
        let start = Instant::now();
        let q_vecs = baseline::extract(&questions);
        let pool_vecs = baseline::extract(&pool.iter().map(|p| &p.pair).collect::<Vec<_>>());
        let pool_tokens: Vec<f64> = pool
            .iter()
            .map(|p| llm::count_tokens(&p.pair.serialize()) as f64)
            .collect();
        let (batches, per_batch, labeled) =
            baseline::plan(&q_vecs, &pool_vecs, &pool_tokens, batch_size, seed);
        baseline_ms = baseline_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_partition(&batches, questions.len());
        assert_eq!(per_batch.len(), batches.len());
        baseline_batches = batches.len();
        baseline_labeled = labeled.len();
    }

    // Kernel path, single-threaded (layout + kernel win only).
    let mut kernel_serial_ms = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        let plan =
            embed::par::with_max_threads(1, || plan_question_batches(&questions, &pool, &config));
        kernel_serial_ms = kernel_serial_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_partition(&plan.batches, questions.len());
    }

    // Kernel path, parallel (the production configuration).
    let mut kernel_parallel_ms = f64::INFINITY;
    let mut kernel_batches = 0usize;
    let mut kernel_labeled = 0usize;
    for _ in 0..iters {
        let start = Instant::now();
        let plan = plan_question_batches(&questions, &pool, &config);
        kernel_parallel_ms = kernel_parallel_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_partition(&plan.batches, questions.len());
        kernel_batches = plan.len();
        kernel_labeled = plan.labeled.len();
    }

    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let speedup = baseline_ms / kernel_parallel_ms;
    let json = format!(
        "{{\n  \"bench\": \"planning_end_to_end\",\n  \"mode\": \"{}\",\n  \"questions\": {},\n  \"pool\": {},\n  \"batch_size\": {},\n  \"threads\": {},\n  \"scalar_baseline_ms\": {:.2},\n  \"kernel_serial_ms\": {:.2},\n  \"kernel_parallel_ms\": {:.2},\n  \"speedup_vs_baseline\": {:.2},\n  \"baseline_batches\": {},\n  \"baseline_labeled\": {},\n  \"kernel_batches\": {},\n  \"kernel_labeled\": {}\n}}\n",
        if quick { "quick" } else { "full" },
        n_questions,
        n_pool,
        batch_size,
        threads,
        baseline_ms,
        kernel_serial_ms,
        kernel_parallel_ms,
        speedup,
        baseline_batches,
        baseline_labeled,
        kernel_batches,
        kernel_labeled,
    );
    // Default to the workspace root regardless of the harness's CWD.
    let out_path = std::env::var("BENCH_PLANNING_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_planning.json").to_owned()
    });
    std::fs::write(&out_path, &json).expect("write BENCH_planning.json");
    println!("{json}");
    println!(
        "planning {}q/{}p: baseline {baseline_ms:.1} ms, kernel serial {kernel_serial_ms:.1} ms, \
         kernel parallel {kernel_parallel_ms:.1} ms ({speedup:.1}x) -> {out_path}",
        n_questions, n_pool
    );
}
