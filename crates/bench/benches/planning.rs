//! End-to-end planning benchmark: scalar baseline vs the kernel layer.
//!
//! Measures one full plan pass — feature extraction → percentile
//! threshold → DBSCAN → diversity batches → covering selection — on a
//! synthetic workload, three ways:
//!
//! * **scalar baseline** — an in-bench replica of the pre-kernel
//!   pipeline: `Vec<Vec<f64>>` features, full-scan DBSCAN region
//!   queries, full-sort percentile, per-pair `sqrt` covering sweeps, all
//!   serial. Kept here (not in the library) so the speedup stays
//!   measurable against the real historical path.
//! * **kernel, serial** — `batcher_core::plan_question_batches` pinned to
//!   one thread: isolates the contiguous-layout/kernel win.
//! * **kernel, parallel** — the production path.
//!
//! Runs in quick mode (small workload, one iteration) under `cargo test`
//! and in full mode (10k questions, best of 3) under `cargo bench`; both
//! write a `BENCH_planning.json` snapshot (path override:
//! `BENCH_PLANNING_OUT`).
//!
//! The snapshot also carries a **metric-index scaling curve**: the
//! ε-graph construction (the planning bottleneck stage) on a synthetic
//! 128-dim workload at 10k/30k/100k points (quick mode: 30k only), timed
//! single-core under both index configurations — the `Auto` pivot table
//! and the single-pivot `Sweep` reference — with clustering parity
//! asserted between the two and against sampled brute-force region
//! queries at every scale. Full mode additionally asserts the pivot
//! table is ≥5x faster than the sweep at 100k.

use std::time::Instant;

use bench::synth::Rng;
use cluster::{dbscan_matrix, DbscanParams};
use embed::index::{build_index, stats, with_index_mode, IndexMode, MetricIndex};
use embed::matrix::scan_rows_within;
use embed::par::with_max_threads;
use embed::FeatureMatrix;

use batcher_core::batching::{BatchingStrategy, ClusteringKind};
use batcher_core::plan::{plan_question_batches, BatchPlanConfig};
use batcher_core::selection::SelectionStrategy;
use batcher_core::{DistanceKind, ExtractorKind};
use bench::synth::synth_pairs;
use er_core::{EntityPair, LabeledPair};

// ---------------------------------------------------------------------
// Scalar baseline: the pre-kernel planning pipeline, verbatim semantics
// ---------------------------------------------------------------------

mod baseline {
    use super::*;
    use text_sim::normalize;

    fn euclid(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    /// The pre-kernel two-row DP Levenshtein (the library has since moved
    /// to Myers' bit-parallel algorithm; the baseline keeps the
    /// historical cost).
    fn dp_levenshtein(a: &str, b: &str) -> usize {
        let a_chars: Vec<char> = a.chars().collect();
        let b_chars: Vec<char> = b.chars().collect();
        let (short, long) = if a_chars.len() <= b_chars.len() {
            (&a_chars, &b_chars)
        } else {
            (&b_chars, &a_chars)
        };
        if short.is_empty() {
            return long.len();
        }
        let mut prev: Vec<usize> = (0..=short.len()).collect();
        let mut cur: Vec<usize> = vec![0; short.len() + 1];
        for (i, &lc) in long.iter().enumerate() {
            cur[0] = i + 1;
            for (j, &sc) in short.iter().enumerate() {
                let sub_cost = usize::from(lc != sc);
                cur[j + 1] = (prev[j] + sub_cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[short.len()]
    }

    fn dp_levenshtein_ratio(a: &str, b: &str) -> f64 {
        let s = a.chars().count() + b.chars().count();
        if s == 0 {
            return 1.0;
        }
        1.0 - dp_levenshtein(a, b) as f64 / s as f64
    }

    pub fn extract(pairs: &[&EntityPair]) -> Vec<Vec<f64>> {
        pairs
            .iter()
            .map(|p| {
                let m = p.a().schema().arity();
                (0..m)
                    .map(|i| {
                        let va = normalize(p.a().value(i).unwrap_or(""));
                        let vb = normalize(p.b().value(i).unwrap_or(""));
                        if va.is_empty() && vb.is_empty() {
                            0.5
                        } else if va.is_empty() || vb.is_empty() {
                            0.0
                        } else {
                            dp_levenshtein_ratio(&va, &vb)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Full-sort percentile with the historical `(j + 1) % n` remap.
    pub fn distance_percentile(
        vectors: &[Vec<f64>],
        pct: f64,
        max_samples: usize,
        seed: u64,
    ) -> f64 {
        let n = vectors.len();
        if n < 2 {
            return 0.0;
        }
        let total = n * (n - 1) / 2;
        let mut samples: Vec<f64> = Vec::new();
        if total <= max_samples {
            for i in 0..n {
                for j in (i + 1)..n {
                    samples.push(euclid(&vectors[i], &vectors[j]));
                }
            }
        } else {
            let mut state = seed | 1;
            let mut step = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..max_samples {
                let i = (step() % n as u64) as usize;
                let mut j = (step() % n as u64) as usize;
                if i == j {
                    j = (j + 1) % n;
                }
                samples.push(euclid(&vectors[i], &vectors[j]));
            }
        }
        samples.sort_by(f64::total_cmp);
        let rank = ((pct / 100.0) * (samples.len() - 1) as f64).round() as usize;
        samples[rank.min(samples.len() - 1)]
    }

    /// Largest-first diversity batching over cluster groups (the rng-free
    /// historical logic).
    fn diversity_batches(mut remaining: Vec<Vec<usize>>, b: usize) -> Vec<Vec<usize>> {
        remaining.retain(|c| !c.is_empty());
        let mut batches = Vec::new();
        while remaining.iter().any(|c| !c.is_empty()) {
            remaining.sort_by_key(|c| std::cmp::Reverse(c.len()));
            let mut batch = Vec::with_capacity(b);
            if remaining.len() >= b {
                for cluster in remaining.iter_mut().take(b) {
                    if let Some(q) = cluster.pop() {
                        batch.push(q);
                    }
                }
            } else {
                let mut ci = 0usize;
                while batch.len() < b && remaining.iter().any(|c| !c.is_empty()) {
                    let idx = ci % remaining.len();
                    if let Some(q) = remaining[idx].pop() {
                        batch.push(q);
                    }
                    ci += 1;
                }
            }
            remaining.retain(|c| !c.is_empty());
            if !batch.is_empty() {
                batches.push(batch);
            }
        }
        batches
    }

    /// The seed repository's lazy-greedy weighted cover, verbatim: stale
    /// heap entries refresh by rescanning the candidate's full coverage
    /// list (the library now maintains gains decrementally through an
    /// inverted index).
    fn greedy_cover_scalar<W: Fn(usize) -> f64>(
        n_elements: usize,
        coverage: &[Vec<u32>],
        weight: W,
    ) -> Vec<usize> {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;
        struct Entry {
            ratio: f64,
            candidate: usize,
            stamp: u64,
        }
        impl PartialEq for Entry {
            fn eq(&self, other: &Self) -> bool {
                self.ratio == other.ratio
            }
        }
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                self.ratio.total_cmp(&other.ratio)
            }
        }
        let mut covered = vec![false; n_elements];
        let mut selected = Vec::new();
        let mut stamp = 0u64;
        let gain = |covered: &[bool], d: usize| -> usize {
            coverage[d]
                .iter()
                .filter(|&&e| !covered[e as usize])
                .count()
        };
        let mut heap: BinaryHeap<Entry> = coverage
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(d, c)| Entry {
                ratio: c.len() as f64 / weight(d).max(f64::MIN_POSITIVE),
                candidate: d,
                stamp: 0,
            })
            .collect();
        while let Some(top) = heap.pop() {
            let g = gain(&covered, top.candidate);
            if g == 0 {
                continue;
            }
            let fresh_ratio = g as f64 / weight(top.candidate).max(f64::MIN_POSITIVE);
            let is_fresh =
                top.stamp == stamp || heap.peek().is_none_or(|next| fresh_ratio >= next.ratio);
            if !is_fresh {
                heap.push(Entry { ratio: fresh_ratio, candidate: top.candidate, stamp });
                continue;
            }
            for &e in &coverage[top.candidate] {
                covered[e as usize] = true;
            }
            selected.push(top.candidate);
            stamp += 1;
        }
        selected
    }

    /// The seed repository's DBSCAN, verbatim: brute-force O(n) region
    /// queries as `Vec<usize>`, unfiltered BFS queue (the library has
    /// since moved to the pivot-window kernel index and a pruned queue —
    /// the baseline keeps the historical costs).
    fn dbscan_scalar(points: &[Vec<f64>], eps: f64, min_pts: usize) -> cluster::Clustering {
        const UNVISITED: usize = usize::MAX;
        const NOISE: usize = usize::MAX - 1;
        let n = points.len();
        let mut labels = vec![UNVISITED; n];
        let mut next_cluster = 0usize;
        let neighbors = |i: usize| -> Vec<usize> {
            (0..n)
                .filter(|&j| euclid(&points[i], &points[j]) <= eps)
                .collect()
        };
        for i in 0..n {
            if labels[i] != UNVISITED {
                continue;
            }
            let seeds = neighbors(i);
            if seeds.len() < min_pts {
                labels[i] = NOISE;
                continue;
            }
            let cid = next_cluster;
            next_cluster += 1;
            labels[i] = cid;
            let mut queue: Vec<usize> = seeds;
            let mut qi = 0;
            while qi < queue.len() {
                let p = queue[qi];
                qi += 1;
                if labels[p] == NOISE {
                    labels[p] = cid;
                }
                if labels[p] != UNVISITED {
                    continue;
                }
                labels[p] = cid;
                let p_neighbors = neighbors(p);
                if p_neighbors.len() >= min_pts {
                    queue.extend(p_neighbors);
                }
            }
        }
        for label in labels.iter_mut() {
            if *label == NOISE || *label == UNVISITED {
                *label = next_cluster;
                next_cluster += 1;
            }
        }
        cluster::Clustering { assignment: labels, n_clusters: next_cluster }
    }

    /// The whole scalar plan: percentile ε → full-scan DBSCAN → diversity
    /// batches → covering selection with per-pair `sqrt` sweeps.
    pub fn plan(
        questions: &[Vec<f64>],
        pool: &[Vec<f64>],
        pool_tokens: &[f64],
        batch_size: usize,
        seed: u64,
    ) -> (Vec<Vec<usize>>, Vec<Vec<usize>>, Vec<usize>) {
        // Batching stage.
        let eps = distance_percentile(questions, 15.0, 200_000, seed).max(1e-9);
        let clusters = dbscan_scalar(questions, eps, 3);
        let batches = diversity_batches(clusters.groups(), batch_size);

        // Covering selection stage.
        let t = distance_percentile(questions, 8.0, 200_000, seed).max(1e-9);
        let coverage: Vec<Vec<u32>> = pool
            .iter()
            .map(|d| {
                questions
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| euclid(d, q) < t)
                    .map(|(qi, _)| qi as u32)
                    .collect()
            })
            .collect();
        let demo_set = greedy_cover_scalar(questions.len(), &coverage, |_| 1.0);
        let per_batch: Vec<Vec<usize>> = batches
            .iter()
            .map(|batch| {
                let batch_cov: Vec<Vec<u32>> = demo_set
                    .iter()
                    .map(|&d| {
                        batch
                            .iter()
                            .enumerate()
                            .filter(|(_, &q)| euclid(&pool[d], &questions[q]) < t)
                            .map(|(qi, _)| qi as u32)
                            .collect()
                    })
                    .collect();
                let picked =
                    greedy_cover_scalar(batch.len(), &batch_cov, |i| pool_tokens[demo_set[i]]);
                let mut demos: Vec<usize> = picked.iter().map(|&i| demo_set[i]).collect();
                if demos.is_empty() && !demo_set.is_empty() {
                    let nearest = demo_set
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            let da = batch
                                .iter()
                                .map(|&q| euclid(&pool[a], &questions[q]))
                                .fold(f64::INFINITY, f64::min);
                            let db = batch
                                .iter()
                                .map(|&q| euclid(&pool[b], &questions[q]))
                                .fold(f64::INFINITY, f64::min);
                            da.total_cmp(&db)
                        })
                        .expect("demo set non-empty");
                    demos.push(nearest);
                }
                demos
            })
            .collect();
        (batches, per_batch, demo_set)
    }
}

// ---------------------------------------------------------------------
// Metric-index scaling curve: ε-graph construction at planning scale
// ---------------------------------------------------------------------

/// Feature dimension of the scaling workload — embedding-scale rows
/// (the serving layer's semantic extractor is 256-dim; 128 keeps the
/// sweep reference affordable at 100k).
const SCALE_DIM: usize = 128;
/// Dimensions that actually carry cluster structure. Isotropic
/// high-dim noise would defeat any pivot pruning (all distances
/// concentrate); real feature matrices have low intrinsic dimension,
/// modeled here as cluster centers living in a 4-dim subspace.
const SCALE_INTRINSIC: usize = 4;
/// Points per cluster, constant across scales so density (not cluster
/// size) is what grows with `n`.
const SCALE_CLUSTER: usize = 64;
/// Per-dimension noise amplitude, scaled so the total displacement from
/// the cluster center (≤0.4, typically ~0.23) is independent of
/// `SCALE_DIM` and the cluster geometry stays fixed.
const SCALE_NOISE: f64 = 0.4 / 11.313_708_498_984_76; // 0.4 / sqrt(128)
/// Grid spacing of the cluster centers in the intrinsic subspace. Held
/// constant across scales — the box grows with `n` — so cluster
/// *density* is scale-invariant and the curve measures pure data-size
/// scaling rather than a density shift.
const SCALE_STEP: f64 = 2.0;
/// Pinned ε: inside the within-cluster distance bulk (~0.33 typical),
/// well under the cross-cluster floor the jittered grid enforces.
const SCALE_EPS: f64 = 0.45;

/// Synthesizes the scaling workload: `n` points in ~`n`/64 clusters
/// whose centers sit on a jittered grid in the intrinsic subspace, with
/// uniform noise in all `SCALE_DIM` dimensions.
fn synth_matrix(n: usize, seed: u64) -> FeatureMatrix {
    let clusters = n.div_ceil(SCALE_CLUSTER);
    let side = (clusters as f64).powf(1.0 / SCALE_INTRINSIC as f64).ceil() as usize;
    let step = SCALE_STEP;
    let mut rng = Rng(seed | 1);
    let mut centers: Vec<[f64; SCALE_INTRINSIC]> = Vec::with_capacity(clusters);
    'fill: for cell in 0usize.. {
        let mut c = [0.0; SCALE_INTRINSIC];
        let mut rest = cell;
        for coord in &mut c {
            *coord =
                (rest % side) as f64 * step + (rng.below(1000) as f64 / 1000.0 - 0.5) * step * 0.2;
            rest /= side;
        }
        centers.push(c);
        if centers.len() == clusters {
            break 'fill;
        }
    }
    let mut data = Vec::with_capacity(n * SCALE_DIM);
    for i in 0..n {
        let c = &centers[i / SCALE_CLUSTER];
        for d in 0..SCALE_DIM {
            let base = c.get(d).copied().unwrap_or(0.0);
            data.push(base + (rng.below(2001) as f64 / 1000.0 - 1.0) * SCALE_NOISE);
        }
    }
    FeatureMatrix::from_flat(data, n, SCALE_DIM)
}

/// One scaling point: single-core ε-graph under both index modes,
/// parity asserted (full clustering equality + sampled brute-force
/// region queries), JSON entry returned.
fn scaling_point(n: usize, quick: bool) -> String {
    let m = synth_matrix(n, 0xC0FFEE);
    let params = DbscanParams { eps: SCALE_EPS, min_pts: 3 };

    let before = stats();
    let started = Instant::now();
    let auto_index = with_index_mode(IndexMode::Auto, || build_index(&m));
    let build_ms = started.elapsed().as_secs_f64() * 1e3;

    let started = Instant::now();
    let auto = with_max_threads(1, || {
        with_index_mode(IndexMode::Auto, || dbscan_matrix(&m, params))
    });
    let auto_ms = started.elapsed().as_secs_f64() * 1e3;
    let pruned_fraction = stats().delta_since(&before).pruned_fraction();

    let started = Instant::now();
    let sweep = with_max_threads(1, || {
        with_index_mode(IndexMode::Sweep, || dbscan_matrix(&m, params))
    });
    let sweep_ms = started.elapsed().as_secs_f64() * 1e3;

    // Parity 1: the pivot table and the sweep reference agree exactly.
    assert_eq!(
        auto.assignment, sweep.assignment,
        "scaling n={n}: index modes produced different clusterings"
    );
    // Workload sanity: the grid structure was actually recovered.
    let expect_clusters = n.div_ceil(SCALE_CLUSTER);
    assert!(
        auto.n_clusters >= expect_clusters / 2,
        "scaling n={n}: degenerate workload ({} clusters, expected ~{expect_clusters})",
        auto.n_clusters
    );

    // Parity 2: sampled brute-force region queries — both index builds
    // against the reference scan kernel, exact id sets.
    let sweep_index = with_index_mode(IndexMode::Sweep, || build_index(&m));
    let brute_rows = if n >= 100_000 { 200 } else { 400 };
    let (mut a, mut b) = (Vec::new(), Vec::new());
    let mut rng = Rng(0xBEEF);
    for _ in 0..brute_rows {
        let r = rng.below(n);
        auto_index.within_row_into(r as u32, SCALE_EPS, false, &mut a);
        sweep_index.within_row_into(r as u32, SCALE_EPS, false, &mut b);
        let mut brute = Vec::new();
        scan_rows_within::<false>(SCALE_DIM, m.row(r), m.flat(), SCALE_EPS * SCALE_EPS, |k| {
            brute.push(k as u32);
        });
        assert_eq!(
            a, brute,
            "scaling n={n} row {r}: pivot table != brute force"
        );
        assert_eq!(
            b, brute,
            "scaling n={n} row {r}: sweep reference != brute force"
        );
    }

    let speedup = sweep_ms / auto_ms;
    if !quick && n >= 100_000 {
        assert!(
            speedup >= 5.0,
            "metric index speedup {speedup:.1}x below the 5x floor at n={n} \
             (auto {auto_ms:.1} ms vs sweep {sweep_ms:.1} ms)"
        );
    }
    println!(
        "scaling n={n}: build {build_ms:.1} ms, dbscan auto {auto_ms:.1} ms, \
         sweep {sweep_ms:.1} ms ({speedup:.1}x), {} clusters, \
         pruned {pruned_fraction:.3}, {brute_rows} brute rows checked",
        auto.n_clusters
    );
    format!(
        "{{ \"n\": {n}, \"dim\": {SCALE_DIM}, \"eps\": {SCALE_EPS}, \
         \"build_ms\": {build_ms:.2}, \"dbscan_index_ms\": {auto_ms:.2}, \
         \"dbscan_sweep_ms\": {sweep_ms:.2}, \"index_speedup\": {speedup:.2}, \
         \"clusters\": {}, \"pruned_fraction\": {pruned_fraction:.4}, \
         \"brute_rows_checked\": {brute_rows} }}",
        auto.n_clusters
    )
}

fn assert_partition(batches: &[Vec<usize>], n: usize) {
    let mut seen: Vec<usize> = batches.iter().flatten().copied().collect();
    seen.sort_unstable();
    assert_eq!(
        seen,
        (0..n).collect::<Vec<_>>(),
        "plan does not partition the question set"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick") || !args.iter().any(|a| a == "--bench");
    let (n_questions, n_pool, iters) = if quick {
        (1500, 300, 1)
    } else {
        (10_000, 2_000, 3)
    };
    let batch_size = 8usize;
    let seed = 42u64;

    let all = synth_pairs(n_questions + n_pool, seed);
    let (pool_pairs, question_pairs) = all.split_at(n_pool);
    let questions: Vec<&EntityPair> = question_pairs.iter().map(|p| &p.pair).collect();
    let pool: Vec<&LabeledPair> = pool_pairs.iter().collect();
    let config = BatchPlanConfig {
        batching: BatchingStrategy::Diversity,
        selection: SelectionStrategy::Covering,
        extractor: ExtractorKind::LevenshteinRatio,
        distance: DistanceKind::Euclidean,
        clustering: ClusteringKind::Dbscan,
        batch_size,
        k: 8,
        cover_percentile: 8.0,
        seed,
    };

    // Scalar baseline (extraction included — it is part of the plan pass).
    let mut baseline_ms = f64::INFINITY;
    let mut baseline_batches = 0usize;
    let mut baseline_labeled = 0usize;
    for _ in 0..iters {
        let start = Instant::now();
        let q_vecs = baseline::extract(&questions);
        let pool_vecs = baseline::extract(&pool.iter().map(|p| &p.pair).collect::<Vec<_>>());
        let pool_tokens: Vec<f64> = pool
            .iter()
            .map(|p| llm::count_tokens(&p.pair.serialize()) as f64)
            .collect();
        let (batches, per_batch, labeled) =
            baseline::plan(&q_vecs, &pool_vecs, &pool_tokens, batch_size, seed);
        baseline_ms = baseline_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_partition(&batches, questions.len());
        assert_eq!(per_batch.len(), batches.len());
        baseline_batches = batches.len();
        baseline_labeled = labeled.len();
    }

    // Kernel path, single-threaded (layout + kernel win only).
    let mut kernel_serial_ms = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        let plan =
            embed::par::with_max_threads(1, || plan_question_batches(&questions, &pool, &config));
        kernel_serial_ms = kernel_serial_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_partition(&plan.batches, questions.len());
    }

    // Kernel path, parallel (the production configuration).
    let mut kernel_parallel_ms = f64::INFINITY;
    let mut kernel_batches = 0usize;
    let mut kernel_labeled = 0usize;
    for _ in 0..iters {
        let start = Instant::now();
        let plan = plan_question_batches(&questions, &pool, &config);
        kernel_parallel_ms = kernel_parallel_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_partition(&plan.batches, questions.len());
        kernel_batches = plan.len();
        kernel_labeled = plan.labeled.len();
    }

    // Metric-index scaling curve (single-core, parity asserted in-bench).
    let scales: &[usize] = if quick {
        &[30_000]
    } else {
        &[10_000, 30_000, 100_000]
    };
    let scaling_entries: Vec<String> = scales.iter().map(|&n| scaling_point(n, quick)).collect();
    let scaling_json = scaling_entries.join(",\n    ");

    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let speedup = baseline_ms / kernel_parallel_ms;
    let json = format!(
        "{{\n  \"bench\": \"planning_end_to_end\",\n  \"mode\": \"{}\",\n  \"questions\": {},\n  \"pool\": {},\n  \"batch_size\": {},\n  \"threads\": {},\n  \"scalar_baseline_ms\": {:.2},\n  \"kernel_serial_ms\": {:.2},\n  \"kernel_parallel_ms\": {:.2},\n  \"speedup_vs_baseline\": {:.2},\n  \"baseline_batches\": {},\n  \"baseline_labeled\": {},\n  \"kernel_batches\": {},\n  \"kernel_labeled\": {},\n  \"index_scaling\": [\n    {scaling_json}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        n_questions,
        n_pool,
        batch_size,
        threads,
        baseline_ms,
        kernel_serial_ms,
        kernel_parallel_ms,
        speedup,
        baseline_batches,
        baseline_labeled,
        kernel_batches,
        kernel_labeled,
    );
    // Default to the workspace root regardless of the harness's CWD.
    let out_path = std::env::var("BENCH_PLANNING_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_planning.json").to_owned()
    });
    std::fs::write(&out_path, &json).expect("write BENCH_planning.json");
    println!("{json}");
    println!(
        "planning {}q/{}p: baseline {baseline_ms:.1} ms, kernel serial {kernel_serial_ms:.1} ms, \
         kernel parallel {kernel_parallel_ms:.1} ms ({speedup:.1}x) -> {out_path}",
        n_questions, n_pool
    );
}
