//! Ablation benches for the design choices DESIGN.md calls out: batch
//! size, covering threshold percentile, clustering algorithm and distance
//! function. Each prints accuracy/cost once per configuration before
//! timing, so `cargo bench` also documents the quality trade-offs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use batcher_core::{ClusteringKind, DistanceKind, RunConfig};
use llm::SimLlm;

fn dataset() -> er_core::Dataset {
    datagen::generate(datagen::DatasetKind::FodorsZagats, 1)
}

fn bench_batch_size_sweep(c: &mut Criterion) {
    let d = dataset();
    let api = SimLlm::new();
    let mut group = c.benchmark_group("ablation_batch_size");
    group.sample_size(10);
    for b in [1usize, 2, 4, 8, 16] {
        let config = RunConfig { batch_size: b, seed: 1, ..RunConfig::best_design() };
        let result = batcher_core::run(&d, &api, config);
        println!(
            "[ablation] batch_size={b}: F1 {:.2}, API {}, prompt tokens/question {:.0}",
            result.f1(),
            result.ledger.api,
            result.ledger.prompt_tokens.get() as f64 / result.confusion.total() as f64
        );
        group.bench_function(format!("b{b}"), |bench| {
            bench.iter(|| batcher_core::run(black_box(&d), &api, config))
        });
    }
    group.finish();
}

fn bench_cover_threshold_sweep(c: &mut Criterion) {
    let d = dataset();
    let api = SimLlm::new();
    let mut group = c.benchmark_group("ablation_cover_percentile");
    group.sample_size(10);
    for pct in [2.0f64, 8.0, 20.0, 40.0] {
        let config = RunConfig { cover_percentile: pct, seed: 1, ..RunConfig::best_design() };
        let result = batcher_core::run(&d, &api, config);
        println!(
            "[ablation] cover_percentile={pct}: F1 {:.2}, demos labeled {}, label cost {}",
            result.f1(),
            result.demos_labeled,
            result.ledger.labeling
        );
        group.bench_function(format!("p{pct}"), |bench| {
            bench.iter(|| batcher_core::run(black_box(&d), &api, config))
        });
    }
    group.finish();
}

fn bench_clustering_choice(c: &mut Criterion) {
    let d = dataset();
    let api = SimLlm::new();
    let mut group = c.benchmark_group("ablation_clustering");
    group.sample_size(10);
    for (name, clustering) in [
        ("dbscan", ClusteringKind::Dbscan),
        ("kmeans", ClusteringKind::KMeans),
    ] {
        let config = RunConfig { clustering, seed: 1, ..RunConfig::best_design() };
        let result = batcher_core::run(&d, &api, config);
        println!("[ablation] clustering={name}: F1 {:.2}", result.f1());
        group.bench_function(name, |bench| {
            bench.iter(|| batcher_core::run(black_box(&d), &api, config))
        });
    }
    group.finish();
}

fn bench_distance_choice(c: &mut Criterion) {
    let d = dataset();
    let api = SimLlm::new();
    let mut group = c.benchmark_group("ablation_distance");
    group.sample_size(10);
    for (name, distance) in [
        ("euclidean", DistanceKind::Euclidean),
        ("cosine", DistanceKind::Cosine),
    ] {
        let config = RunConfig { distance, seed: 1, ..RunConfig::best_design() };
        let result = batcher_core::run(&d, &api, config);
        println!("[ablation] distance={name}: F1 {:.2}", result.f1());
        group.bench_function(name, |bench| {
            bench.iter(|| batcher_core::run(black_box(&d), &api, config))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_size_sweep,
    bench_cover_threshold_sweep,
    bench_clustering_choice,
    bench_distance_choice
);
criterion_main!(benches);
