//! Serving-layer benchmark: coalescing-queue throughput under
//! concurrent clients, the telemetry subsystem's overhead, and
//! histogram-backed end-to-end latency percentiles.
//!
//! The same duplicate-heavy workload runs twice — telemetry enabled
//! (registry + trace log live, the production default) and disabled
//! (every handle a single-branch no-op) — so the cost of observing the
//! service is itself observable. p50/p99 answer latency comes from the
//! service's own `er_answer_us` histograms via `stats()`, not from an
//! external timer: the bench exercises exactly what `/metrics` exports.
//!
//! The same workload also runs against the durable tier in both fsync
//! modes (`Batched` and `Always`) so the write-ahead log's throughput
//! cost per policy sits next to the telemetry numbers in the snapshot.
//!
//! The open-loop **traffic replay** section is the sharded serving
//! core's proof: arrivals follow a precomputed schedule (steady,
//! diurnal, or spike curve) that does not slow down when the service
//! does, so backpressure shows up as queue depth, shed requests and
//! planner-lock contention instead of a politely throttled client. The
//! same fixed offered load replays at 1, 4 and 8 shards; on a small
//! container the headline is contention removal — planner-lock hold
//! time and peak queue depth must fall as shards split the flush path.
//!
//! Runs in quick mode (small workload, one iteration) under `cargo
//! test` and in full mode (best of 5) under `cargo bench`; both write a
//! `BENCH_serving.json` snapshot (path override: `BENCH_SERVING_OUT`).
//! `--replay-smoke` runs *only* the traffic-replay section at quick
//! scale (the CI smoke step). Full mode asserts the instrumentation
//! overhead stays within 5% of the uninstrumented throughput, the
//! batched-fsync WAL within 25% of the WAL-off throughput, lock hold
//! and peak depth strictly decreasing 1 -> 4 -> 8 shards with at least
//! a 2x lock-hold reduction at 8, and the spike curve shedding.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use er_core::{EntityPair, LabeledPair, Money, PairId, Record, RecordId, Schema};
use er_service::{ErService, ServiceConfig, ServiceStats, SubmitOutcome, SyncPolicy, WalConfig};
use llm::SimLlm;

fn service_config(telemetry: bool) -> ServiceConfig {
    ServiceConfig {
        budget: Money::from_dollars(50.0),
        batch_size: 8,
        flush_deadline: Duration::from_millis(2),
        workers: 2,
        domain: "Beer".to_owned(),
        telemetry,
        ..ServiceConfig::default()
    }
}

/// A fresh WAL directory for one run (each run must pay the journaling
/// cost from scratch, not replay its predecessor).
struct TempWal {
    dir: std::path::PathBuf,
}

impl TempWal {
    fn new(tag: &str, iter: usize) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "bench-serving-wal-{tag}-{iter}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Self { dir }
    }

    fn config(&self, sync: SyncPolicy) -> ServiceConfig {
        ServiceConfig {
            wal: Some(WalConfig { sync, ..WalConfig::at(&self.dir) }),
            ..service_config(true)
        }
    }
}

impl Drop for TempWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn fixtures(n_questions: usize) -> (Vec<LabeledPair>, Vec<EntityPair>) {
    let dataset = datagen::generate(datagen::DatasetKind::Beer, 42);
    let bootstrap = dataset.pairs()[..150].to_vec();
    let questions: Vec<EntityPair> = dataset.pairs()[150..]
        .iter()
        .cycle()
        .take(n_questions)
        .map(|p| p.pair.clone())
        .collect();
    (bootstrap, questions)
}

/// One full serving run: a fresh service, `clients` threads each
/// pushing its stripe of the bank `rounds` times (duplicates across
/// rounds exercise the cache + coalescing paths). Returns the wall
/// time, total submits (counted by the bench — the dark run's own
/// counters are no-ops by design) and the final stats snapshot.
fn run_workload(
    config: ServiceConfig,
    bootstrap: &[LabeledPair],
    bank: &[EntityPair],
    clients: usize,
    rounds: usize,
) -> (f64, u64, ServiceStats) {
    let service = Arc::new(ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap.to_vec(),
        config,
    ));
    let start = Instant::now();
    let submits: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let mut n = 0u64;
                    for round in 0..rounds {
                        for q in bank
                            .iter()
                            .skip((client + round) % clients)
                            .step_by(clients)
                        {
                            std::hint::black_box(service.submit(q));
                            n += 1;
                        }
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let secs = start.elapsed().as_secs_f64();
    let stats = service.stats();
    (secs, submits, stats)
}

/// Offered-load shapes for the open-loop replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Curve {
    /// Constant arrival rate.
    Steady,
    /// One sinusoidal day: trough at 10% of the base rate, peak at 100%.
    Diurnal,
    /// Half the base rate, with an 8x burst through the middle tenth of
    /// the run — the shape the admission controller exists for.
    Spike,
}

impl Curve {
    fn name(self) -> &'static str {
        match self {
            Curve::Steady => "steady",
            Curve::Diurnal => "diurnal",
            Curve::Spike => "spike",
        }
    }

    /// Instantaneous rate multiplier at normalized run position `u`.
    fn rate(self, u: f64) -> f64 {
        match self {
            Curve::Steady => 1.0,
            Curve::Diurnal => 0.55 + 0.45 * (std::f64::consts::TAU * u).sin(),
            Curve::Spike => {
                if (0.45..0.55).contains(&u) {
                    8.0
                } else {
                    0.5
                }
            }
        }
    }
}

/// Precomputed arrival offsets: `n` arrivals whose gaps follow the
/// curve's rate over a nominal duration of `n * base_gap`. The schedule
/// is fixed before the run starts — an overloaded service cannot slow
/// the offered load down, which is the whole point of open loop.
fn arrival_schedule(curve: Curve, n: usize, base_gap: Duration) -> Vec<Duration> {
    let nominal = base_gap.as_secs_f64() * n as f64;
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            let u = (t / nominal).min(0.999);
            let gap = base_gap.as_secs_f64() / curve.rate(u).max(1e-3);
            let out = Duration::from_secs_f64(t);
            t += gap;
            out
        })
        .collect()
}

/// A bank of `n` pairwise-distinct questions, so every arrival exercises
/// the queue and the planner (no cache fast path hiding contention).
fn replay_bank(n: usize) -> Vec<EntityPair> {
    let schema = Arc::new(Schema::new(["title", "brand", "price"]).unwrap());
    (0..n)
        .map(|i| {
            let left: Vec<String> = vec![
                format!("craft ale number {i}"),
                format!("brewery-{}", i % 13),
                format!("{}.49", 2 + i % 9),
            ];
            let right: Vec<String> = if i % 2 == 0 {
                left.clone()
            } else {
                vec![
                    format!("imported lager {i}"),
                    format!("importer-{}", i % 11),
                    "87.50".into(),
                ]
            };
            let a =
                Arc::new(Record::new(RecordId::a(i as u32), Arc::clone(&schema), left).unwrap());
            let b =
                Arc::new(Record::new(RecordId::b(i as u32), Arc::clone(&schema), right).unwrap());
            EntityPair::new(PairId(i as u32), a, b).unwrap()
        })
        .collect()
}

/// One open-loop replay run's result row.
struct ReplayOutcome {
    curve: Curve,
    shards: usize,
    offered_qps: f64,
    achieved_qps: f64,
    answered: u64,
    shed: u64,
    answer_p50_us: u64,
    answer_p99_us: u64,
    lock_hold_p50_us: u64,
    lock_hold_p99_us: u64,
    queue_depth_peak: u64,
}

impl ReplayOutcome {
    fn shed_rate_pct(&self) -> f64 {
        let total = self.answered + self.shed;
        if total == 0 {
            0.0
        } else {
            100.0 * self.shed as f64 / total as f64
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"curve\": \"{}\", \"shards\": {}, \"offered_qps\": {:.0}, \
             \"achieved_qps\": {:.0}, \"answered\": {}, \"shed\": {}, \
             \"shed_rate_pct\": {:.2}, \"answer_p50_us\": {}, \"answer_p99_us\": {}, \
             \"lock_hold_p50_us\": {}, \"lock_hold_p99_us\": {}, \"queue_depth_peak\": {}}}",
            self.curve.name(),
            self.shards,
            self.offered_qps,
            self.achieved_qps,
            self.answered,
            self.shed,
            self.shed_rate_pct(),
            self.answer_p50_us,
            self.answer_p99_us,
            self.lock_hold_p50_us,
            self.lock_hold_p99_us,
            self.queue_depth_peak,
        )
    }
}

/// One offered load: the arrival count, the base inter-arrival gap the
/// curve modulates, and the client-lane concurrency bound. Fixed across
/// shard counts so the contention comparison is apples-to-apples.
#[derive(Clone, Copy)]
struct ReplayLoad {
    n_arrivals: usize,
    base_gap: Duration,
    threads: usize,
}

/// Replays one arrival schedule against a fresh service. `load.threads`
/// bounds in-flight concurrency (a blocked lane falls behind schedule
/// and fires late rather than dropping arrivals); each lane claims the
/// next arrival slot, sleeps until it is due, and `try_submit`s — sheds
/// count, they do not retry.
fn replay(
    curve: Curve,
    shards: usize,
    queue_capacity: usize,
    bootstrap: &[LabeledPair],
    bank: &[EntityPair],
    load: ReplayLoad,
) -> ReplayOutcome {
    // A wider coalescing window than the closed-loop sections use (5ms
    // deadline, batches of 16): per-flush size then scales with the
    // questions a shard accumulates, which is exactly what shard count
    // divides — the contention signal under measurement. Identical
    // across shard counts, so the comparison stays apples-to-apples.
    let service = Arc::new(ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap.to_vec(),
        ServiceConfig {
            shards,
            queue_capacity,
            batch_size: 16,
            flush_deadline: Duration::from_millis(5),
            ..service_config(true)
        },
    ));
    let schedule = arrival_schedule(curve, load.n_arrivals, load.base_gap);
    let offered_qps = load.n_arrivals as f64
        / schedule
            .last()
            .copied()
            .unwrap_or(load.base_gap)
            .as_secs_f64()
            .max(1e-9);
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    let (answered, shed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..load.threads)
            .map(|_| {
                let service = Arc::clone(&service);
                let schedule = &schedule;
                let next = &next;
                scope.spawn(move || {
                    let (mut answered, mut shed) = (0u64, 0u64);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= schedule.len() {
                            break;
                        }
                        let due = schedule[i];
                        let now = start.elapsed();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        match service.try_submit(&bank[i % bank.len()]) {
                            SubmitOutcome::Decided(d) => {
                                std::hint::black_box(d);
                                answered += 1;
                            }
                            SubmitOutcome::Shed { .. } => shed += 1,
                        }
                    }
                    (answered, shed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0u64, 0u64), |(a, s), (da, ds)| (a + da, s + ds))
    });
    let secs = start.elapsed().as_secs_f64();
    let stats = service.stats();
    assert_eq!(stats.shards, shards as u64);
    assert_eq!(
        stats.shed_total, shed,
        "service and bench disagree on sheds"
    );
    ReplayOutcome {
        curve,
        shards,
        offered_qps,
        achieved_qps: answered as f64 / secs.max(1e-9),
        answered,
        shed,
        answer_p50_us: stats.answer_p50_us,
        answer_p99_us: stats.answer_p99_us,
        lock_hold_p50_us: stats.planner_lock_hold_p50_us,
        lock_hold_p99_us: stats.planner_lock_hold_p99_us,
        queue_depth_peak: stats.queue_depth_peak,
    }
}

/// Runs the whole replay matrix — the steady curve at 1/4/8 shards for
/// the contention scaling headline, then diurnal and spike at 4 shards
/// (the spike against a deliberately tight admission bound) — and
/// renders the snapshot's `"replay"` section.
fn run_replay_section(quick: bool, bootstrap: &[LabeledPair]) -> String {
    // Full mode runs the same offered load as quick, 4x longer — on a
    // small container, piling on client threads just adds scheduler
    // noise to the hold-time histograms; more samples at a rate that
    // cleanly separates the shard counts is what sharpens the
    // percentiles. The env overrides exist for tuning the load to a
    // specific machine without recompiling.
    let env_usize = |name: &str, default: usize| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let load = ReplayLoad {
        n_arrivals: env_usize("REPLAY_ARRIVALS", if quick { 360 } else { 1440 }),
        base_gap: Duration::from_micros(
            env_usize("REPLAY_GAP_US", if quick { 500 } else { 400 }) as u64
        ),
        threads: env_usize("REPLAY_THREADS", if quick { 16 } else { 24 }),
    };
    let bank = replay_bank(load.n_arrivals);
    // Tight enough that the spike's 8x burst overruns it, roomy enough
    // that steady/diurnal load admits cleanly.
    let spike_capacity = 4;

    let steady: Vec<ReplayOutcome> = [1usize, 4, 8]
        .iter()
        .map(|&shards| {
            let out = replay(
                Curve::Steady,
                shards,
                ServiceConfig::default().queue_capacity,
                bootstrap,
                &bank,
                load,
            );
            println!(
                "replay steady x{shards}: {:.0}/{:.0} q/s achieved/offered, \
                 lock p50/p99 {}/{} us, depth peak {}, shed {}",
                out.achieved_qps,
                out.offered_qps,
                out.lock_hold_p50_us,
                out.lock_hold_p99_us,
                out.queue_depth_peak,
                out.shed
            );
            out
        })
        .collect();
    let diurnal = replay(
        Curve::Diurnal,
        4,
        ServiceConfig::default().queue_capacity,
        bootstrap,
        &bank,
        load,
    );
    let spike = replay(Curve::Spike, 4, spike_capacity, bootstrap, &bank, load);
    println!(
        "replay diurnal x4: {:.0} q/s, p99 {} us | spike x4 (cap {spike_capacity}): \
         shed {} ({:.1}%)",
        diurnal.achieved_qps,
        diurnal.answer_p99_us,
        spike.shed,
        spike.shed_rate_pct()
    );

    // Contention-removal ratios, 1 shard vs 8 at identical offered
    // load. Medians, not p99s: a run produces a few hundred planner
    // flushes, so p99 is whatever the worst scheduler preemption did
    // to one sample, while p50 is stable run to run.
    let lock_hold_reduction_8x =
        steady[0].lock_hold_p50_us as f64 / steady[2].lock_hold_p50_us.max(1) as f64;
    let queue_depth_reduction_8x =
        steady[0].queue_depth_peak as f64 / steady[2].queue_depth_peak.max(1) as f64;

    if !quick {
        // The acceptance headline: splitting the flush path must shrink
        // both contention signals monotonically, and hold-time by >= 2x
        // at 8 shards. Absolute wall-times vary with hardware; these are
        // ratios of same-machine runs at one offered load.
        for pair in steady.windows(2) {
            assert!(
                pair[1].lock_hold_p50_us < pair[0].lock_hold_p50_us,
                "lock hold did not fall {} -> {} shards: {} us -> {} us",
                pair[0].shards,
                pair[1].shards,
                pair[0].lock_hold_p50_us,
                pair[1].lock_hold_p50_us
            );
            assert!(
                pair[1].queue_depth_peak < pair[0].queue_depth_peak,
                "queue depth did not fall {} -> {} shards: {} -> {}",
                pair[0].shards,
                pair[1].shards,
                pair[0].queue_depth_peak,
                pair[1].queue_depth_peak
            );
        }
        assert!(
            lock_hold_reduction_8x >= 2.0,
            "8 shards cut lock hold only {lock_hold_reduction_8x:.2}x (need >= 2x)"
        );
        assert!(
            spike.shed > 0,
            "spike curve never overran the admission bound"
        );
        assert_eq!(steady[0].shed, 0, "steady load shed at 1 shard");
    }

    let rows: Vec<String> = steady
        .iter()
        .map(|o| format!("      {}", o.json()))
        .collect();
    format!
        (
        "{{\n    \"arrivals\": {},\n    \"base_gap_us\": {},\n    \"client_threads\": {},\n    \"spike_queue_capacity\": {spike_capacity},\n    \"steady\": [\n{}\n    ],\n    \"diurnal\": {},\n    \"spike\": {},\n    \"lock_hold_reduction_8x\": {:.2},\n    \"queue_depth_reduction_8x\": {:.2}\n  }}",
        load.n_arrivals,
        load.base_gap.as_micros(),
        load.threads,
        rows.join(",\n"),
        diurnal.json(),
        spike.json(),
        lock_hold_reduction_8x,
        queue_depth_reduction_8x,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let replay_smoke = args.iter().any(|a| a == "--replay-smoke");
    let quick =
        replay_smoke || args.iter().any(|a| a == "--quick") || !args.iter().any(|a| a == "--bench");
    let (n_questions, clients, rounds, iters) = if quick { (48, 4, 2, 1) } else { (256, 8, 6, 5) };
    let (bootstrap, bank) = fixtures(n_questions);

    if replay_smoke {
        // The CI traffic-replay smoke step: only the open-loop section,
        // quick scale, its own snapshot document.
        let replay_json = run_replay_section(true, &bootstrap);
        let json = format!(
            "{{\n  \"bench\": \"serving_traffic_replay\",\n  \"mode\": \"smoke\",\n  \"replay\": {replay_json}\n}}\n"
        );
        let out_path = std::env::var("BENCH_SERVING_OUT").unwrap_or_else(|_| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json").to_owned()
        });
        std::fs::write(&out_path, &json).expect("write replay snapshot");
        println!("{json}");
        return;
    }

    // Interleave the configurations each iteration so machine noise hits
    // all of them equally; keep the best (highest q/s) of each.
    let mut qps_on = 0.0f64;
    let mut qps_off = 0.0f64;
    let mut qps_wal_batched = 0.0f64;
    let mut qps_wal_always = 0.0f64;
    let mut stats_on: Option<ServiceStats> = None;
    for iter in 0..iters {
        let (secs, submits, stats) =
            run_workload(service_config(true), &bootstrap, &bank, clients, rounds);
        let qps = submits as f64 / secs;
        if qps > qps_on {
            qps_on = qps;
            stats_on = Some(stats);
        }
        let (secs, submits, _) =
            run_workload(service_config(false), &bootstrap, &bank, clients, rounds);
        qps_off = qps_off.max(submits as f64 / secs);

        let wal = TempWal::new("batched", iter);
        let (secs, submits, wal_stats) = run_workload(
            wal.config(SyncPolicy::Batched { every: 32 }),
            &bootstrap,
            &bank,
            clients,
            rounds,
        );
        assert_eq!(wal_stats.wal_append_errors, 0, "{wal_stats:?}");
        assert!(wal_stats.wal_appends > 0, "WAL run journaled nothing");
        qps_wal_batched = qps_wal_batched.max(submits as f64 / secs);

        let wal = TempWal::new("always", iter);
        let (secs, submits, wal_stats) = run_workload(
            wal.config(SyncPolicy::Always),
            &bootstrap,
            &bank,
            clients,
            rounds,
        );
        assert_eq!(wal_stats.wal_append_errors, 0, "{wal_stats:?}");
        qps_wal_always = qps_wal_always.max(submits as f64 / secs);
    }
    let stats = stats_on.expect("at least one instrumented iteration");
    let overhead_pct = 100.0 * (1.0 - qps_on / qps_off);
    // WAL overhead is measured against the instrumented WAL-off run —
    // the configuration a durable deployment would otherwise use.
    let wal_batched_overhead_pct = 100.0 * (1.0 - qps_wal_batched / qps_on);
    let wal_always_overhead_pct = 100.0 * (1.0 - qps_wal_always / qps_on);

    // Cache-hit fast path, measured by the service's own histogram: a
    // warmed service where every submit resolves from the answer cache.
    let hot_service = ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap.clone(),
        service_config(true),
    );
    let hot: Vec<&EntityPair> = bank.iter().take(32).collect();
    for q in &hot {
        hot_service.submit(q); // warm the cache
    }
    let warmup = hot_service.stats();
    for i in 0..(if quick { 256 } else { 4096 }) {
        std::hint::black_box(hot_service.submit(hot[i % hot.len()]));
    }
    let hot_stats = hot_service.stats();
    assert!(
        hot_stats.cache_hits >= warmup.cache_hits + 256,
        "warmed service missed the cache: {hot_stats:?}"
    );
    let cache_hit_p50_us = hot_stats.answer_p50_us;

    if !quick {
        // Symmetric envelope: a large *negative* overhead (instrumented
        // faster than dark) means the baseline itself regressed or the
        // comparison is broken — either way the number is wrong, not good.
        assert!(
            overhead_pct.abs() <= 5.0,
            "telemetry overhead {overhead_pct:.2}% outside the ±5% envelope \
             ({qps_on:.0} q/s on vs {qps_off:.0} q/s off)"
        );
        // The batched-fsync WAL is the durable default; its write path is
        // one buffered append per event group, so it must stay cheap.
        // Measured ~5% on quiet hardware; the envelope leaves room for
        // shared-runner noise while still catching a real regression
        // (e.g. an accidental fsync-per-record).
        assert!(
            wal_batched_overhead_pct <= 25.0,
            "batched WAL overhead {wal_batched_overhead_pct:.2}% exceeds the 25% envelope \
             ({qps_wal_batched:.0} q/s vs {qps_on:.0} q/s WAL-off)"
        );
        // `Always` pays an fsync per append group (~3 per batch);
        // measured ~55-60%, and inherently hardware-dependent.
        assert!(
            wal_always_overhead_pct <= 75.0,
            "always-fsync WAL overhead {wal_always_overhead_pct:.2}% exceeds the 75% envelope \
             ({qps_wal_always:.0} q/s vs {qps_on:.0} q/s WAL-off)"
        );
    }

    // The open-loop traffic replay: the sharded core's contention proof,
    // run after the closed-loop sections so their envelopes stay
    // comparable with earlier snapshots.
    let replay_json = run_replay_section(quick, &bootstrap);

    let json = format!(
        "{{\n  \"bench\": \"serving_end_to_end\",\n  \"mode\": \"{}\",\n  \"questions\": {},\n  \"clients\": {},\n  \"rounds\": {},\n  \"submits\": {},\n  \"telemetry_on_qps\": {:.0},\n  \"telemetry_off_qps\": {:.0},\n  \"telemetry_overhead_pct\": {:.2},\n  \"wal_batched_qps\": {:.0},\n  \"wal_always_qps\": {:.0},\n  \"wal_batched_overhead_pct\": {:.2},\n  \"wal_always_overhead_pct\": {:.2},\n  \"answer_p50_us\": {},\n  \"answer_p99_us\": {},\n  \"plan_p50_us\": {},\n  \"plan_p99_us\": {},\n  \"cache_hit_p50_us\": {},\n  \"llm_answered\": {},\n  \"cache_hits\": {},\n  \"coalesced\": {},\n  \"replay\": {replay_json}\n}}\n",
        if quick { "quick" } else { "full" },
        n_questions,
        clients,
        rounds,
        stats.submitted,
        qps_on,
        qps_off,
        overhead_pct,
        qps_wal_batched,
        qps_wal_always,
        wal_batched_overhead_pct,
        wal_always_overhead_pct,
        stats.answer_p50_us,
        stats.answer_p99_us,
        stats.plan_p50_us,
        stats.plan_p99_us,
        cache_hit_p50_us,
        stats.llm_answered,
        stats.cache_hits,
        stats.coalesced_duplicates,
    );
    // Default to the workspace root regardless of the harness's CWD.
    let out_path = std::env::var("BENCH_SERVING_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json").to_owned()
    });
    std::fs::write(&out_path, &json).expect("write BENCH_serving.json");
    println!("{json}");
    println!(
        "serving {clients}x{rounds} over {n_questions}q: {qps_on:.0} q/s instrumented, \
         {qps_off:.0} q/s dark ({overhead_pct:.1}% overhead), \
         WAL batched {qps_wal_batched:.0} q/s ({wal_batched_overhead_pct:.1}%) / \
         always {qps_wal_always:.0} q/s ({wal_always_overhead_pct:.1}%), \
         answer p50 {} us / p99 {} us -> {out_path}",
        stats.answer_p50_us, stats.answer_p99_us
    );
}
