//! Serving-layer benchmarks: coalescing-queue throughput under
//! concurrent clients, and the cache-hit fast path's latency.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use er_core::{EntityPair, Money};
use er_service::{ErService, ServiceConfig};
use llm::SimLlm;

fn service_config() -> ServiceConfig {
    ServiceConfig {
        budget: Money::from_dollars(50.0),
        batch_size: 8,
        flush_deadline: Duration::from_millis(2),
        workers: 2,
        domain: "Beer".to_owned(),
        ..ServiceConfig::default()
    }
}

fn fixtures() -> (Vec<er_core::LabeledPair>, Vec<EntityPair>) {
    let dataset = datagen::generate(datagen::DatasetKind::Beer, 42);
    let bootstrap = dataset.pairs()[..150].to_vec();
    let questions: Vec<EntityPair> = dataset.pairs()[150..]
        .iter()
        .map(|p| p.pair.clone())
        .collect();
    (bootstrap, questions)
}

/// Throughput of the coalescing queue: 4 clients push 64 distinct
/// questions through submit(); every question takes the full miss path
/// (fresh service per iteration, measured end to end).
fn bench_coalescing_throughput(c: &mut Criterion) {
    let (bootstrap, questions) = fixtures();
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.bench_function("coalesce_64q_4clients", |bench| {
        bench.iter(|| {
            let service = Arc::new(ErService::start(
                Arc::new(SimLlm::new()),
                bootstrap.clone(),
                service_config(),
            ));
            std::thread::scope(|scope| {
                for client in 0..4usize {
                    let service = Arc::clone(&service);
                    let questions = &questions;
                    scope.spawn(move || {
                        for q in questions.iter().skip(client).step_by(4).take(16) {
                            black_box(service.submit(q));
                        }
                    });
                }
            });
            service.stats().llm_answered
        })
    });
    group.finish();
}

/// Latency of the cache-hit fast path: the service is pre-warmed so
/// every submit() resolves from the answer cache without queueing.
fn bench_cache_hit_latency(c: &mut Criterion) {
    let (bootstrap, questions) = fixtures();
    let service = ErService::start(Arc::new(SimLlm::new()), bootstrap, service_config());
    let hot: Vec<&EntityPair> = questions.iter().take(32).collect();
    for q in &hot {
        service.submit(q); // warm the cache
    }
    let mut index = 0usize;
    c.bench_function("serving/cache_hit_submit", |bench| {
        bench.iter(|| {
            index = (index + 1) % hot.len();
            black_box(service.submit(hot[index]))
        })
    });
}

criterion_group!(
    benches,
    bench_coalescing_throughput,
    bench_cache_hit_latency
);
criterion_main!(benches);
