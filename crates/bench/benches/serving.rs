//! Serving-layer benchmark: coalescing-queue throughput under
//! concurrent clients, the telemetry subsystem's overhead, and
//! histogram-backed end-to-end latency percentiles.
//!
//! The same duplicate-heavy workload runs twice — telemetry enabled
//! (registry + trace log live, the production default) and disabled
//! (every handle a single-branch no-op) — so the cost of observing the
//! service is itself observable. p50/p99 answer latency comes from the
//! service's own `er_answer_us` histograms via `stats()`, not from an
//! external timer: the bench exercises exactly what `/metrics` exports.
//!
//! The same workload also runs against the durable tier in both fsync
//! modes (`Batched` and `Always`) so the write-ahead log's throughput
//! cost per policy sits next to the telemetry numbers in the snapshot.
//!
//! Runs in quick mode (small workload, one iteration) under `cargo
//! test` and in full mode (best of 5) under `cargo bench`; both write a
//! `BENCH_serving.json` snapshot (path override: `BENCH_SERVING_OUT`).
//! Full mode asserts the instrumentation overhead stays within 5% of
//! the uninstrumented throughput and the batched-fsync WAL within 25%
//! of the WAL-off throughput.

use std::sync::Arc;
use std::time::{Duration, Instant};

use er_core::{EntityPair, LabeledPair, Money};
use er_service::{ErService, ServiceConfig, ServiceStats, SyncPolicy, WalConfig};
use llm::SimLlm;

fn service_config(telemetry: bool) -> ServiceConfig {
    ServiceConfig {
        budget: Money::from_dollars(50.0),
        batch_size: 8,
        flush_deadline: Duration::from_millis(2),
        workers: 2,
        domain: "Beer".to_owned(),
        telemetry,
        ..ServiceConfig::default()
    }
}

/// A fresh WAL directory for one run (each run must pay the journaling
/// cost from scratch, not replay its predecessor).
struct TempWal {
    dir: std::path::PathBuf,
}

impl TempWal {
    fn new(tag: &str, iter: usize) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "bench-serving-wal-{tag}-{iter}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Self { dir }
    }

    fn config(&self, sync: SyncPolicy) -> ServiceConfig {
        ServiceConfig {
            wal: Some(WalConfig { sync, ..WalConfig::at(&self.dir) }),
            ..service_config(true)
        }
    }
}

impl Drop for TempWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn fixtures(n_questions: usize) -> (Vec<LabeledPair>, Vec<EntityPair>) {
    let dataset = datagen::generate(datagen::DatasetKind::Beer, 42);
    let bootstrap = dataset.pairs()[..150].to_vec();
    let questions: Vec<EntityPair> = dataset.pairs()[150..]
        .iter()
        .cycle()
        .take(n_questions)
        .map(|p| p.pair.clone())
        .collect();
    (bootstrap, questions)
}

/// One full serving run: a fresh service, `clients` threads each
/// pushing its stripe of the bank `rounds` times (duplicates across
/// rounds exercise the cache + coalescing paths). Returns the wall
/// time, total submits (counted by the bench — the dark run's own
/// counters are no-ops by design) and the final stats snapshot.
fn run_workload(
    config: ServiceConfig,
    bootstrap: &[LabeledPair],
    bank: &[EntityPair],
    clients: usize,
    rounds: usize,
) -> (f64, u64, ServiceStats) {
    let service = Arc::new(ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap.to_vec(),
        config,
    ));
    let start = Instant::now();
    let submits: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let mut n = 0u64;
                    for round in 0..rounds {
                        for q in bank
                            .iter()
                            .skip((client + round) % clients)
                            .step_by(clients)
                        {
                            std::hint::black_box(service.submit(q));
                            n += 1;
                        }
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let secs = start.elapsed().as_secs_f64();
    let stats = service.stats();
    (secs, submits, stats)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick") || !args.iter().any(|a| a == "--bench");
    let (n_questions, clients, rounds, iters) = if quick { (48, 4, 2, 1) } else { (256, 8, 6, 5) };
    let (bootstrap, bank) = fixtures(n_questions);

    // Interleave the configurations each iteration so machine noise hits
    // all of them equally; keep the best (highest q/s) of each.
    let mut qps_on = 0.0f64;
    let mut qps_off = 0.0f64;
    let mut qps_wal_batched = 0.0f64;
    let mut qps_wal_always = 0.0f64;
    let mut stats_on: Option<ServiceStats> = None;
    for iter in 0..iters {
        let (secs, submits, stats) =
            run_workload(service_config(true), &bootstrap, &bank, clients, rounds);
        let qps = submits as f64 / secs;
        if qps > qps_on {
            qps_on = qps;
            stats_on = Some(stats);
        }
        let (secs, submits, _) =
            run_workload(service_config(false), &bootstrap, &bank, clients, rounds);
        qps_off = qps_off.max(submits as f64 / secs);

        let wal = TempWal::new("batched", iter);
        let (secs, submits, wal_stats) = run_workload(
            wal.config(SyncPolicy::Batched { every: 32 }),
            &bootstrap,
            &bank,
            clients,
            rounds,
        );
        assert_eq!(wal_stats.wal_append_errors, 0, "{wal_stats:?}");
        assert!(wal_stats.wal_appends > 0, "WAL run journaled nothing");
        qps_wal_batched = qps_wal_batched.max(submits as f64 / secs);

        let wal = TempWal::new("always", iter);
        let (secs, submits, wal_stats) = run_workload(
            wal.config(SyncPolicy::Always),
            &bootstrap,
            &bank,
            clients,
            rounds,
        );
        assert_eq!(wal_stats.wal_append_errors, 0, "{wal_stats:?}");
        qps_wal_always = qps_wal_always.max(submits as f64 / secs);
    }
    let stats = stats_on.expect("at least one instrumented iteration");
    let overhead_pct = 100.0 * (1.0 - qps_on / qps_off);
    // WAL overhead is measured against the instrumented WAL-off run —
    // the configuration a durable deployment would otherwise use.
    let wal_batched_overhead_pct = 100.0 * (1.0 - qps_wal_batched / qps_on);
    let wal_always_overhead_pct = 100.0 * (1.0 - qps_wal_always / qps_on);

    // Cache-hit fast path, measured by the service's own histogram: a
    // warmed service where every submit resolves from the answer cache.
    let hot_service = ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap.clone(),
        service_config(true),
    );
    let hot: Vec<&EntityPair> = bank.iter().take(32).collect();
    for q in &hot {
        hot_service.submit(q); // warm the cache
    }
    let warmup = hot_service.stats();
    for i in 0..(if quick { 256 } else { 4096 }) {
        std::hint::black_box(hot_service.submit(hot[i % hot.len()]));
    }
    let hot_stats = hot_service.stats();
    assert!(
        hot_stats.cache_hits >= warmup.cache_hits + 256,
        "warmed service missed the cache: {hot_stats:?}"
    );
    let cache_hit_p50_us = hot_stats.answer_p50_us;

    if !quick {
        // Symmetric envelope: a large *negative* overhead (instrumented
        // faster than dark) means the baseline itself regressed or the
        // comparison is broken — either way the number is wrong, not good.
        assert!(
            overhead_pct.abs() <= 5.0,
            "telemetry overhead {overhead_pct:.2}% outside the ±5% envelope \
             ({qps_on:.0} q/s on vs {qps_off:.0} q/s off)"
        );
        // The batched-fsync WAL is the durable default; its write path is
        // one buffered append per event group, so it must stay cheap.
        // Measured ~5% on quiet hardware; the envelope leaves room for
        // shared-runner noise while still catching a real regression
        // (e.g. an accidental fsync-per-record).
        assert!(
            wal_batched_overhead_pct <= 25.0,
            "batched WAL overhead {wal_batched_overhead_pct:.2}% exceeds the 25% envelope \
             ({qps_wal_batched:.0} q/s vs {qps_on:.0} q/s WAL-off)"
        );
        // `Always` pays an fsync per append group (~3 per batch);
        // measured ~55-60%, and inherently hardware-dependent.
        assert!(
            wal_always_overhead_pct <= 75.0,
            "always-fsync WAL overhead {wal_always_overhead_pct:.2}% exceeds the 75% envelope \
             ({qps_wal_always:.0} q/s vs {qps_on:.0} q/s WAL-off)"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"serving_end_to_end\",\n  \"mode\": \"{}\",\n  \"questions\": {},\n  \"clients\": {},\n  \"rounds\": {},\n  \"submits\": {},\n  \"telemetry_on_qps\": {:.0},\n  \"telemetry_off_qps\": {:.0},\n  \"telemetry_overhead_pct\": {:.2},\n  \"wal_batched_qps\": {:.0},\n  \"wal_always_qps\": {:.0},\n  \"wal_batched_overhead_pct\": {:.2},\n  \"wal_always_overhead_pct\": {:.2},\n  \"answer_p50_us\": {},\n  \"answer_p99_us\": {},\n  \"plan_p50_us\": {},\n  \"plan_p99_us\": {},\n  \"cache_hit_p50_us\": {},\n  \"llm_answered\": {},\n  \"cache_hits\": {},\n  \"coalesced\": {}\n}}\n",
        if quick { "quick" } else { "full" },
        n_questions,
        clients,
        rounds,
        stats.submitted,
        qps_on,
        qps_off,
        overhead_pct,
        qps_wal_batched,
        qps_wal_always,
        wal_batched_overhead_pct,
        wal_always_overhead_pct,
        stats.answer_p50_us,
        stats.answer_p99_us,
        stats.plan_p50_us,
        stats.plan_p99_us,
        cache_hit_p50_us,
        stats.llm_answered,
        stats.cache_hits,
        stats.coalesced_duplicates,
    );
    // Default to the workspace root regardless of the harness's CWD.
    let out_path = std::env::var("BENCH_SERVING_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json").to_owned()
    });
    std::fs::write(&out_path, &json).expect("write BENCH_serving.json");
    println!("{json}");
    println!(
        "serving {clients}x{rounds} over {n_questions}q: {qps_on:.0} q/s instrumented, \
         {qps_off:.0} q/s dark ({overhead_pct:.1}% overhead), \
         WAL batched {qps_wal_batched:.0} q/s ({wal_batched_overhead_pct:.1}%) / \
         always {qps_wal_always:.0} q/s ({wal_always_overhead_pct:.1}%), \
         answer p50 {} us / p99 {} us -> {out_path}",
        stats.answer_p50_us, stats.answer_p99_us
    );
}
