//! Microbenchmarks of the hot kernels: string similarity, tokenization,
//! embedding, clustering, greedy set cover and prompt handling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_string_kernels(c: &mut Criterion) {
    let a = "samsung galaxy s21 ultra smartphone 256gb phantom black";
    let b = "samsung galxy s21 ultra smart phone 256 gb black phantom";
    let mut group = c.benchmark_group("string_kernels");
    group.bench_function("levenshtein", |bench| {
        bench.iter(|| text_sim::levenshtein(black_box(a), black_box(b)))
    });
    group.bench_function("levenshtein_ratio", |bench| {
        bench.iter(|| text_sim::levenshtein_ratio(black_box(a), black_box(b)))
    });
    group.bench_function("jaccard_tokens", |bench| {
        bench.iter(|| text_sim::jaccard_tokens(black_box(a), black_box(b)))
    });
    group.bench_function("jaro_winkler", |bench| {
        bench.iter(|| text_sim::jaro_winkler(black_box(a), black_box(b)))
    });
    group.bench_function("qgram_cosine_q3", |bench| {
        bench.iter(|| text_sim::qgram_cosine(black_box(a), black_box(b), 3))
    });
    group.finish();
}

fn bench_tokenizer(c: &mut Criterion) {
    let prompt = "This is an entity resolution task. ".repeat(50);
    c.bench_function("llm_count_tokens_1750_chars", |bench| {
        bench.iter(|| llm::count_tokens(black_box(&prompt)))
    });
}

fn bench_embedding(c: &mut Criterion) {
    let embedder = embed::Embedder::new(embed::EmbedderConfig::default());
    let text = "title: canon eos r5 mirrorless camera body, brand: canon, price: 3899.00";
    c.bench_function("embed_256d", |bench| {
        bench.iter(|| embedder.embed(black_box(text)))
    });
}

fn bench_matrix_kernels(c: &mut Criterion) {
    // 2000 rows of 64-dim features — the semantic extractor's shape on a
    // mid-size question set.
    let rows: Vec<Vec<f64>> = (0..2000)
        .map(|i| {
            (0..64)
                .map(|d| ((i * 64 + d) as f64 * 0.613).sin())
                .collect()
        })
        .collect();
    let query = rows[0].clone();
    let matrix = embed::FeatureMatrix::from_rows(rows.clone());
    let mut group = c.benchmark_group("matrix_2000x64");
    group.bench_function("sq_dists_one_to_many", |bench| {
        let mut out = vec![0.0f64; matrix.len()];
        bench.iter(|| matrix.sq_dists_to_all(black_box(&query), &mut out))
    });
    group.bench_function("scalar_one_to_many", |bench| {
        // The pointer-chasing per-pair baseline the kernel replaces.
        bench.iter(|| {
            rows.iter()
                .map(|r| embed::euclidean_distance(black_box(&query), r))
                .sum::<f64>()
        })
    });
    group.bench_function("pairwise_chunk_64rows", |bench| {
        let mut out = vec![0.0f64; 64 * matrix.len()];
        bench.iter(|| matrix.pairwise_sq_chunk(black_box(0..64), &matrix, &mut out))
    });
    group.bench_function("cosine_one_to_many", |bench| {
        let mut out = vec![0.0f64; matrix.len()];
        bench.iter(|| matrix.cosine_dists_to_all(black_box(&query), &mut out))
    });
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    // 400 points in 4-d, three latent blobs — the scale of a small
    // question set.
    let points: Vec<Vec<f64>> = (0..400)
        .map(|i| {
            let blob = (i % 3) as f64 * 3.0;
            vec![
                blob + (i as f64 * 0.017) % 0.5,
                blob + (i as f64 * 0.031) % 0.5,
                (i as f64 * 0.013) % 0.5,
                (i as f64 * 0.029) % 0.5,
            ]
        })
        .collect();
    let mut group = c.benchmark_group("clustering_400x4");
    group.bench_function("dbscan", |bench| {
        bench.iter(|| {
            cluster::dbscan(
                black_box(&points),
                cluster::DbscanParams { eps: 0.6, min_pts: 3 },
                cluster::euclidean,
            )
        })
    });
    group.bench_function("kmeans_k50", |bench| {
        bench.iter(|| {
            cluster::kmeans(
                black_box(&points),
                cluster::KMeansParams { k: 50, max_iters: 30, seed: 1 },
            )
        })
    });
    group.finish();
}

fn bench_greedy_cover(c: &mut Criterion) {
    // 2000 elements, 300 candidates with arithmetic-progression coverage —
    // the scale of demonstration-set generation on a mid-size benchmark.
    let coverage: Vec<Vec<u32>> = (1..=300usize)
        .map(|step| (0..2000u32).step_by(step).collect())
        .collect();
    c.bench_function("greedy_cover_2000x300", |bench| {
        bench.iter(|| {
            batcher_core::greedy_weighted_cover(2000, black_box(&coverage), |d| {
                1.0 + d as f64 * 0.001
            })
        })
    });
}

fn bench_prompt_roundtrip(c: &mut Criterion) {
    let d = datagen::generate(datagen::DatasetKind::Beer, 1);
    let demos: Vec<&er_core::LabeledPair> = d.pairs().iter().take(8).collect();
    let questions: Vec<String> = d.pairs()[8..16]
        .iter()
        .map(|p| p.pair.serialize())
        .collect();
    let desc = batcher_core::task_description("Beer");
    let mut group = c.benchmark_group("prompt");
    group.bench_function("build_batch_prompt_8x8", |bench| {
        bench.iter(|| {
            batcher_core::build_batch_prompt(
                black_box(&desc),
                black_box(&demos),
                black_box(&questions),
            )
        })
    });
    let prompt = batcher_core::build_batch_prompt(&desc, &demos, &questions);
    group.bench_function("llm_parse_prompt_8x8", |bench| {
        bench.iter(|| llm::parse::parse_prompt(black_box(&prompt)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_string_kernels,
    bench_tokenizer,
    bench_embedding,
    bench_matrix_kernels,
    bench_clustering,
    bench_greedy_cover,
    bench_prompt_roundtrip
);
criterion_main!(benches);
