//! Shared harness utilities for the table/figure reproduction binaries
//! and the planning-path benches.

pub mod synth;
pub mod tables;

use datagen::{generate, DatasetKind};
use er_core::Dataset;

/// The seed every reproduction binary uses for dataset synthesis, so all
/// tables are computed over identical data.
pub const DATA_SEED: u64 = 20_240_101;

/// Generates the benchmark suite (all eight datasets, Table II order).
pub fn all_datasets() -> Vec<Dataset> {
    DatasetKind::ALL
        .into_iter()
        .map(|kind| generate(kind, DATA_SEED))
        .collect()
}

/// Renders one fixed-width table row from cells.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, &w) in cells.iter().zip(widths) {
        out.push_str(&format!("{cell:>w$}  "));
    }
    out.trim_end().to_owned()
}

/// Prints a titled separator block around a table.
pub fn print_header(title: &str) {
    let bar = "=".repeat(title.len().max(24));
    println!("\n{bar}\n{title}\n{bar}");
}

/// Formats a dollar amount with two decimals, as the paper's tables do.
pub fn usd(m: er_core::Money) -> String {
    format!("{:.2}", m.dollars())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_datasets() {
        // Generation is expensive; spot-check the small ones only.
        let beer = generate(DatasetKind::Beer, DATA_SEED);
        assert_eq!(beer.stats().pairs, 450);
    }

    #[test]
    fn row_formatting() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }

    #[test]
    fn usd_formatting() {
        assert_eq!(usd(er_core::Money::from_dollars(1.234)), "1.23");
    }
}
