//! Reproduction of every table and figure in the paper's evaluation
//! (§VI). Each `table_*` / `figure_*` function runs the experiment and
//! prints rows in the paper's layout; the `repro_*` binaries are thin
//! wrappers. See EXPERIMENTS.md for paper-vs-measured commentary.

use baselines::{ManualPrompt, PlmKind, PlmMatcher};
use batcher_core::{BatchingStrategy, ExtractorKind, RunConfig, RunResult, SelectionStrategy};
use er_core::{Dataset, F1Summary, Money};
use llm::{ModelKind, SimLlm};

use crate::{print_header, usd};

/// Seeds for the repeated runs of Exp-1 (the paper reports mean ± std over
/// three runs).
pub const RUN_SEEDS: [u64; 3] = [11, 22, 33];

/// Table II — dataset statistics (sanity anchor for the generators).
pub fn table2(datasets: &[Dataset]) {
    print_header("Table II: Statistics of Datasets");
    println!(
        "{:<6} {:<12} {:>7} {:>8} {:>9}",
        "ds", "domain", "# attr", "# pairs", "# matches"
    );
    for d in datasets {
        let s = d.stats();
        println!(
            "{:<6} {:<12} {:>7} {:>8} {:>9}",
            s.name, s.domain, s.attributes, s.pairs, s.matches
        );
    }
}

/// One row of Table III: mean±std F1 and API cost for a config.
fn repeated_runs(dataset: &Dataset, base: RunConfig) -> (F1Summary, Money) {
    let api = SimLlm::new();
    let mut f1s = Vec::new();
    let mut api_cost = Money::ZERO;
    for seed in RUN_SEEDS {
        let result = batcher_core::run(dataset, &api, RunConfig { seed, ..base });
        f1s.push(result.f1());
        api_cost = result.ledger.api; // same prompt sizes per seed; report last
    }
    (
        F1Summary::from_runs(&f1s).expect("three runs always present"),
        api_cost,
    )
}

/// Table III — standard vs batch prompting on accuracy and API cost
/// (Exp-1). Both use the same 8 fixed random demonstrations.
pub fn table3(datasets: &[Dataset]) {
    print_header("Table III: Standard vs Batch Prompting (F1 mean±std over 3 runs, API $)");
    println!(
        "{:<6} {:>16} {:>10} {:>16} {:>10} {:>8}",
        "ds", "standard F1", "std API$", "batch F1", "batch API$", "saving"
    );
    for d in datasets {
        let (std_f1, std_api) = repeated_runs(d, RunConfig::standard_prompting());
        let (batch_f1, batch_api) = repeated_runs(d, RunConfig::batch_prompting_fixed());
        println!(
            "{:<6} {:>16} {:>10} {:>16} {:>10} {:>7.1}x",
            d.name(),
            std_f1.to_string(),
            usd(std_api),
            batch_f1.to_string(),
            usd(batch_api),
            std_api.ratio(batch_api),
        );
    }
}

/// Figure 6 — precision / recall / F1 of standard vs batch prompting on
/// the WA and AB datasets.
pub fn figure6(datasets: &[Dataset]) {
    print_header("Figure 6: Precision/Recall/F1, Standard vs Batch (WA, AB)");
    println!(
        "{:<6} {:<10} {:>10} {:>8} {:>8}",
        "ds", "method", "precision", "recall", "F1"
    );
    let api = SimLlm::new();
    for d in datasets
        .iter()
        .filter(|d| d.name() == "WA" || d.name() == "AB")
    {
        for (label, config) in [
            ("Standard", RunConfig::standard_prompting()),
            ("Batch", RunConfig::batch_prompting_fixed()),
        ] {
            let result = batcher_core::run(d, &api, RunConfig { seed: RUN_SEEDS[0], ..config });
            let s = result.confusion.scores();
            println!(
                "{:<6} {:<10} {:>10.2} {:>8.2} {:>8.2}",
                d.name(),
                label,
                s.precision,
                s.recall,
                s.f1
            );
        }
    }
}

/// Table IV — the 3×4 design space grid (Exp-2): F1, API $, Label $ per
/// (question batching, demonstration selection) cell.
pub fn table4(datasets: &[Dataset]) {
    print_header("Table IV: Design Space (batching x selection): F1 / API$ / Label$");
    let api = SimLlm::new();
    for d in datasets {
        println!("\n--- {} ---", d.name());
        println!(
            "{:<12} {:>14} {:>14} {:>14} {:>14}",
            "batching", "Fix", "Topk-batch", "Topk-question", "Cover"
        );
        for batching in BatchingStrategy::ALL {
            let mut cells: Vec<String> = Vec::new();
            for selection in SelectionStrategy::ALL {
                let result =
                    batcher_core::run_design_space_cell(d, &api, batching, selection, RUN_SEEDS[0]);
                cells.push(format!(
                    "{:.1}/{}/{}",
                    result.f1(),
                    usd(result.ledger.api),
                    usd(result.ledger.labeling)
                ));
            }
            println!(
                "{:<12} {:>14} {:>14} {:>14} {:>14}",
                batching.name(),
                cells[0],
                cells[1],
                cells[2],
                cells[3]
            );
        }
    }
}

/// Figure 7 — F1 vs number of training samples: the PLM baselines against
/// the BatchER horizontal line (Exp-3).
pub fn figure7(datasets: &[Dataset]) {
    print_header("Figure 7: F1 vs train samples (PLM baselines vs BatchER)");
    let api = SimLlm::new();
    for d in datasets {
        let split = d.split_3_1_1(RUN_SEEDS[0]).expect("non-empty dataset");
        let batcher = batcher_core::run(
            d,
            &api,
            RunConfig { seed: RUN_SEEDS[0], ..RunConfig::best_design() },
        );
        println!(
            "\n--- {} (BatchER: F1 {:.2} with {} labeled demos) ---",
            d.name(),
            batcher.f1(),
            batcher.demos_labeled
        );
        let max_train = split.train.len();
        let sizes: Vec<usize> = [50usize, 100, 200, 500, 1000, 2000, 4000]
            .into_iter()
            .filter(|&s| s <= max_train)
            .collect();
        print!("{:<10}", "samples");
        for s in &sizes {
            print!("{s:>9}");
        }
        println!();
        for kind in PlmKind::ALL {
            print!("{:<10}", kind.name());
            for &s in &sizes {
                let outcome = PlmMatcher::learning_curve_point(
                    kind,
                    &split.train,
                    &split.valid,
                    &split.test,
                    s,
                );
                print!("{:>9.2}", outcome.confusion.scores().f1);
            }
            println!();
        }
    }
}

/// Table V — ManualPrompt vs BatchER (Exp-4). The paper omits AB because
/// ManualPrompt was never evaluated there.
pub fn table5(datasets: &[Dataset]) {
    print_header("Table V: Manual Prompting vs Batch Prompting");
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12}",
        "ds", "manual F1", "manual API$", "batch F1", "batch API$"
    );
    let api = SimLlm::new();
    for d in datasets.iter().filter(|d| d.name() != "AB") {
        let split = d.split_3_1_1(RUN_SEEDS[0]).expect("non-empty dataset");
        let manual = ManualPrompt::default()
            .run(&api, &split.train, &split.test, RUN_SEEDS[0])
            .expect("simulated endpoint does not fail terminally");
        let batch = batcher_core::run(
            d,
            &api,
            RunConfig { seed: RUN_SEEDS[0], ..RunConfig::best_design() },
        );
        println!(
            "{:<6} {:>12.2} {:>12} {:>12.2} {:>12}",
            d.name(),
            manual.confusion.scores().f1,
            usd(manual.ledger.api),
            batch.f1(),
            usd(batch.ledger.api)
        );
    }
}

/// Table VI — underlying LLMs (Exp-5): GPT-3.5-03 / GPT-3.5-06 / GPT-4,
/// plus the Llama2 batch-failure observation.
pub fn table6(datasets: &[Dataset]) {
    print_header("Table VI: Underlying LLMs (best design choice)");
    println!(
        "{:<6} {:>12} {:>9} {:>12} {:>9} {:>12} {:>9}",
        "ds", "3.5-03 F1", "API$", "3.5-06 F1", "API$", "GPT-4 F1", "API$"
    );
    let api = SimLlm::new();
    for d in datasets {
        let mut cells = Vec::new();
        for model in [
            ModelKind::Gpt35Turbo0301,
            ModelKind::Gpt35Turbo0613,
            ModelKind::Gpt4,
        ] {
            let result = batcher_core::run(
                d,
                &api,
                RunConfig { model, seed: RUN_SEEDS[0], ..RunConfig::best_design() },
            );
            cells.push((result.f1(), result.ledger.api));
        }
        println!(
            "{:<6} {:>12.2} {:>9} {:>12.2} {:>9} {:>12.2} {:>9}",
            d.name(),
            cells[0].0,
            usd(cells[0].1),
            cells[1].0,
            usd(cells[1].1),
            cells[2].0,
            usd(cells[2].1)
        );
    }

    // The Llama2 observation (§VI-F): batch prompts yield no usable output.
    let beer = datasets
        .iter()
        .find(|d| d.name() == "Beer")
        .expect("suite contains Beer");
    let llama = batcher_core::run(
        beer,
        &api,
        RunConfig {
            model: ModelKind::Llama2Chat70b,
            seed: RUN_SEEDS[0],
            ..RunConfig::best_design()
        },
    );
    println!(
        "\nLlama2-chat-70B on Beer: {}/{} questions unanswered under batch \
         prompting (the paper omits Llama2 for this reason).",
        llama.unanswered,
        llama.confusion.total()
    );
}

/// Table VII — feature extractors (Exp-6): BATCHER-LR / -JAC / -SEM.
pub fn table7(datasets: &[Dataset]) {
    print_header("Table VII: Feature Extractors (F1)");
    println!(
        "{:<6} {:>14} {:>14} {:>14}",
        "ds", "BATCHER-LR", "BATCHER-JAC", "BATCHER-SEM"
    );
    let api = SimLlm::new();
    for d in datasets {
        let mut cells = Vec::new();
        for extractor in ExtractorKind::ALL {
            let result = batcher_core::run(
                d,
                &api,
                RunConfig { extractor, seed: RUN_SEEDS[0], ..RunConfig::best_design() },
            );
            cells.push(result.f1());
        }
        println!(
            "{:<6} {:>14.2} {:>14.2} {:>14.2}",
            d.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
}

/// Convenience: the best-design run used by several tables.
pub fn best_run(dataset: &Dataset) -> RunResult {
    let api = SimLlm::new();
    batcher_core::run(
        dataset,
        &api,
        RunConfig { seed: RUN_SEEDS[0], ..RunConfig::best_design() },
    )
}
