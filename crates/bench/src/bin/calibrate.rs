//! Diagnostic: engine score separation and pipeline F1 per dataset.
//!
//! Not a paper artifact — this is the tuning loop used to calibrate the
//! simulator profiles and dataset difficulty against the paper's reported
//! ranges. Kept in-tree so the calibration is reproducible.

use batcher_core::{RunConfig, SelectionStrategy};
use bench::{all_datasets, print_header};
use llm::engine::PairFeatures;
use llm::parse::parse_pair_text;
use llm::SimLlm;

fn main() {
    let datasets = all_datasets();
    let api = SimLlm::new();

    print_header("Engine score separation (test split)");
    println!(
        "{:>6} {:>10} {:>10} {:>8}",
        "ds", "match", "nonmatch", "gap"
    );
    for d in &datasets {
        let split = d.split_3_1_1(1).unwrap();
        let (mut pos, mut npos, mut neg, mut nneg) = (0.0, 0usize, 0.0, 0usize);
        for p in &split.test {
            let parsed = parse_pair_text(&p.pair.serialize());
            let score = PairFeatures::of(&parsed).score;
            if p.label.is_match() {
                pos += score;
                npos += 1;
            } else {
                neg += score;
                nneg += 1;
            }
        }
        let (mp, mn) = (pos / npos.max(1) as f64, neg / nneg.max(1) as f64);
        println!("{:>6} {:>10.3} {:>10.3} {:>8.3}", d.name(), mp, mn, mp - mn);
    }

    print_header("Pipeline F1 (best design vs standard, seed 1)");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8}",
        "ds", "best", "std", "batchfix", "labeled"
    );
    for d in &datasets {
        let best = batcher_core::run(d, &api, RunConfig { seed: 1, ..RunConfig::best_design() });
        let std = batcher_core::run(
            d,
            &api,
            RunConfig { seed: 1, ..RunConfig::standard_prompting() },
        );
        let bf = batcher_core::run(
            d,
            &api,
            RunConfig { seed: 1, ..RunConfig::batch_prompting_fixed() },
        );
        println!(
            "{:>6} {:>8.2} {:>8.2} {:>8.2} {:>8}",
            d.name(),
            best.f1(),
            std.f1(),
            bf.f1(),
            best.demos_labeled
        );
    }

    print_header("Cover vs TopK labeling (diversity batching, seed 1)");
    for d in &datasets {
        let cover = batcher_core::run(d, &api, RunConfig { seed: 1, ..RunConfig::default() });
        let topkq = batcher_core::run(
            d,
            &api,
            RunConfig {
                selection: SelectionStrategy::TopKQuestion,
                seed: 1,
                ..RunConfig::default()
            },
        );
        println!(
            "{:>6}  cover: {:>5} demos (F1 {:>6.2})   topk-q: {:>5} demos (F1 {:>6.2})",
            d.name(),
            cover.demos_labeled,
            cover.f1(),
            topkq.demos_labeled,
            topkq.f1()
        );
    }
}
