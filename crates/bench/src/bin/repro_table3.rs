//! Regenerates Table III (standard vs batch prompting).
fn main() {
    bench::tables::table3(&bench::all_datasets());
}
