//! Regenerates Table IV (the 3x4 design space grid).
fn main() {
    bench::tables::table4(&bench::all_datasets());
}
