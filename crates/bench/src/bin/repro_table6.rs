//! Regenerates Table VI (underlying LLMs).
fn main() {
    bench::tables::table6(&bench::all_datasets());
}
