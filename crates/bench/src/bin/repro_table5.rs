//! Regenerates Table V (ManualPrompt vs BatchER).
fn main() {
    bench::tables::table5(&bench::all_datasets());
}
