//! Regenerates every table and figure in one pass (EXPERIMENTS.md source).
fn main() {
    let datasets = bench::all_datasets();
    bench::tables::table2(&datasets);
    bench::tables::table3(&datasets);
    bench::tables::figure6(&datasets);
    bench::tables::table4(&datasets);
    bench::tables::figure7(&datasets);
    bench::tables::table5(&datasets);
    bench::tables::table6(&datasets);
    bench::tables::table7(&datasets);
}
