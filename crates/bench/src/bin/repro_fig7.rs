//! Regenerates Figure 7 (PLM learning curves vs BatchER).
fn main() {
    bench::tables::figure7(&bench::all_datasets());
}
