//! Regenerates Figure 6 (precision/recall/F1 on WA and AB).
fn main() {
    bench::tables::figure6(&bench::all_datasets());
}
