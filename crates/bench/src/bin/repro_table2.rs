//! Regenerates Table II (dataset statistics).
fn main() {
    bench::tables::table2(&bench::all_datasets());
}
