//! Regenerates Table VII (feature extractors).
fn main() {
    bench::tables::table7(&bench::all_datasets());
}
