//! Shared synthetic workload for the planning-path benches
//! (`benches/planning.rs`, `benches/incremental.rs`): candidate pairs
//! drawn from 32 latent corruption patterns — each pattern fixes, per
//! attribute, whether the two sides agree exactly, up to a typo, or not
//! at all — the structure DBSCAN is meant to recover from the feature
//! vectors. One definition so both benches measure the same workload.

use std::sync::Arc;

use er_core::{EntityPair, LabeledPair, MatchLabel, PairId, Record, RecordId, Schema};

/// Deterministic xorshift for workload synthesis and trace choices.
pub struct Rng(pub u64);

impl Rng {
    /// Advances and returns the raw 64-bit state.
    pub fn step(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform-ish draw in `0..n`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.step() % n as u64) as usize
    }
}

const VOCAB: [&str; 24] = [
    "atlas", "breeze", "copper", "delta", "ember", "falcon", "granite", "harbor", "indigo",
    "juniper", "kestrel", "lumen", "meridian", "nimbus", "onyx", "prairie", "quartz", "ridge",
    "summit", "timber", "umber", "vertex", "willow", "zephyr",
];

fn value(rng: &mut Rng) -> String {
    format!(
        "{} {} {}",
        VOCAB[rng.below(VOCAB.len())],
        VOCAB[rng.below(VOCAB.len())],
        rng.below(1000)
    )
}

/// Perturbs one word of a value (a realistic typo-level edit).
fn perturb(v: &str, rng: &mut Rng) -> String {
    let mut words: Vec<String> = v.split(' ').map(str::to_owned).collect();
    let w = rng.below(words.len());
    words[w].push(char::from(b'a' + (rng.below(26) as u8)));
    words.join(" ")
}

/// Synthesizes `n` candidate pairs across the 32 corruption patterns.
pub fn synth_pairs(n: usize, seed: u64) -> Vec<LabeledPair> {
    let schema = Arc::new(Schema::new(["name", "brand", "city", "desc"]).expect("valid schema"));
    let mut rng = Rng(seed | 1);
    (0..n)
        .map(|i| {
            let pattern = i % 32;
            let left: Vec<String> = (0..4).map(|_| value(&mut rng)).collect();
            let right: Vec<String> = left
                .iter()
                .enumerate()
                .map(|(j, v)| match (pattern >> j) & 3 {
                    0 => v.clone(),
                    1 | 2 => perturb(v, &mut rng),
                    _ => value(&mut rng),
                })
                .collect();
            let a = Record::new(RecordId::a(i as u32), Arc::clone(&schema), left)
                .expect("schema-aligned record");
            let b = Record::new(RecordId::b(i as u32), Arc::clone(&schema), right)
                .expect("schema-aligned record");
            let pair = EntityPair::new(PairId(i as u32), Arc::new(a), Arc::new(b))
                .expect("records share a schema");
            let label = if pattern < 8 {
                MatchLabel::Matching
            } else {
                MatchLabel::NonMatching
            };
            LabeledPair::new(pair, label)
        })
        .collect()
}
