//! Candidate pair generation (blocking) for entity resolution.
//!
//! An end-to-end ER system runs a *blocker* before the matcher (§II-A):
//! instead of scoring all `|T_A| × |T_B|` pairs, the blocker emits a much
//! smaller candidate set that still contains (almost) all true matches.
//! The paper treats blocking as a solved upstream step; this crate provides
//! the standard token-overlap blocker so the workspace's examples can run
//! the full pipeline from raw tables.
//!
//! Two components:
//!
//! * [`TokenBlocker`] — inverted index over normalized word tokens of
//!   selected attributes; candidates are pairs sharing at least
//!   `min_shared_tokens` tokens, optionally ranked/filtered by TF-IDF
//!   cosine similarity.
//! * [`BlockingReport`] — recall/reduction metrics against gold matches,
//!   the two numbers every blocking paper reports.

use std::collections::HashMap;

use er_core::{EntityPair, PairId, Record};
use text_sim::{word_tokens, TfIdfModel};

/// Configuration of the token-overlap blocker.
#[derive(Debug, Clone)]
pub struct BlockerConfig {
    /// Attribute indices to index (e.g. just the title). Empty = all.
    pub attributes: Vec<usize>,
    /// Minimum number of shared tokens for a candidate.
    pub min_shared_tokens: usize,
    /// Optional TF-IDF cosine floor applied after token overlap.
    pub min_cosine: Option<f64>,
    /// Tokens appearing in more than this fraction of records are treated
    /// as stop words and not indexed (guards against quadratic blowup on
    /// ubiquitous tokens like "the").
    pub stopword_df: f64,
}

impl Default for BlockerConfig {
    fn default() -> Self {
        Self { attributes: vec![0], min_shared_tokens: 2, min_cosine: None, stopword_df: 0.2 }
    }
}

/// Token-overlap blocker over two record collections.
#[derive(Debug)]
pub struct TokenBlocker {
    config: BlockerConfig,
}

impl TokenBlocker {
    /// A blocker with the given configuration.
    pub fn new(config: BlockerConfig) -> Self {
        Self { config }
    }

    /// A blocker with the default configuration (title attribute,
    /// ≥2 shared tokens).
    pub fn default_blocker() -> Self {
        Self::new(BlockerConfig::default())
    }

    /// Emits candidate `(a_index, b_index)` pairs between two tables.
    pub fn candidates(&self, table_a: &[Record], table_b: &[Record]) -> Vec<(usize, usize)> {
        // Attribute list resolved once per table (every record of a table
        // shares a schema), and one scratch buffer reused across records:
        // tokenize-sort-dedup in place, then move the exact survivor set
        // out — no per-record attribute clone, no growth reallocations.
        let resolve_attrs = |table: &[Record]| -> Vec<usize> {
            if self.config.attributes.is_empty() {
                (0..table.first().map_or(0, |r| r.schema().arity())).collect()
            } else {
                self.config.attributes.clone()
            }
        };
        let attrs_a = resolve_attrs(table_a);
        let attrs_b = resolve_attrs(table_b);
        let mut scratch: Vec<String> = Vec::new();
        let mut tokens_of = |r: &Record, attrs: &[usize]| -> Vec<String> {
            scratch.clear();
            for &i in attrs {
                scratch.extend(word_tokens(r.value(i).unwrap_or("")));
            }
            scratch.sort_unstable();
            scratch.dedup();
            // Not `mem::take`: drain moves the strings out into an
            // exact-size vec while the scratch buffer keeps its capacity
            // for the next record, so tokenization never re-grows.
            #[allow(clippy::drain_collect)]
            scratch.drain(..).collect()
        };

        // Document frequency over both tables for the stop-word filter.
        let mut df: HashMap<String, usize> = HashMap::new();
        let all_tokens_a: Vec<Vec<String>> =
            table_a.iter().map(|r| tokens_of(r, &attrs_a)).collect();
        let all_tokens_b: Vec<Vec<String>> =
            table_b.iter().map(|r| tokens_of(r, &attrs_b)).collect();
        for toks in all_tokens_a.iter().chain(&all_tokens_b) {
            for t in toks {
                *df.entry(t.clone()).or_insert(0) += 1;
            }
        }
        let n_records = (table_a.len() + table_b.len()).max(1);
        let max_df = (self.config.stopword_df * n_records as f64).ceil() as usize;

        // Inverted index over table B.
        let mut index: HashMap<&str, Vec<usize>> = HashMap::new();
        for (j, toks) in all_tokens_b.iter().enumerate() {
            for t in toks {
                if df.get(t).copied().unwrap_or(0) <= max_df {
                    index.entry(t.as_str()).or_default().push(j);
                }
            }
        }

        // Probe with table A; count shared tokens per B-record.
        let mut out = Vec::new();
        let mut overlap: HashMap<usize, usize> = HashMap::new();
        for (i, toks) in all_tokens_a.iter().enumerate() {
            overlap.clear();
            for t in toks {
                if df.get(t).copied().unwrap_or(0) > max_df {
                    continue;
                }
                if let Some(postings) = index.get(t.as_str()) {
                    for &j in postings {
                        *overlap.entry(j).or_insert(0) += 1;
                    }
                }
            }
            let mut hits: Vec<usize> = overlap
                .iter()
                .filter(|&(_, &c)| c >= self.config.min_shared_tokens)
                .map(|(&j, _)| j)
                .collect();
            hits.sort_unstable();
            out.extend(hits.into_iter().map(|j| (i, j)));
        }

        // Optional TF-IDF cosine refinement.
        if let Some(floor) = self.config.min_cosine {
            let corpus: Vec<String> = table_a
                .iter()
                .chain(table_b.iter())
                .map(|r| r.values().join(" "))
                .collect();
            let model = TfIdfModel::fit(corpus.iter().map(String::as_str));
            out.retain(|&(i, j)| {
                let sa = table_a[i].values().join(" ");
                let sb = table_b[j].values().join(" ");
                model.cosine(&sa, &sb) >= floor
            });
        }
        out
    }

    /// Materializes candidate index pairs into [`EntityPair`]s.
    ///
    /// # Panics
    /// Panics if an index is out of bounds or schemas differ — both are
    /// caller bugs, not data conditions.
    pub fn materialize(
        table_a: &[std::sync::Arc<Record>],
        table_b: &[std::sync::Arc<Record>],
        candidates: &[(usize, usize)],
    ) -> Vec<EntityPair> {
        candidates
            .iter()
            .enumerate()
            .map(|(k, &(i, j))| {
                EntityPair::new(
                    PairId(k as u32),
                    std::sync::Arc::clone(&table_a[i]),
                    std::sync::Arc::clone(&table_b[j]),
                )
                .expect("blocking inputs share a schema")
            })
            .collect()
    }
}

/// Recall / reduction metrics of a blocking run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingReport {
    /// Fraction of gold matching pairs retained by the candidate set.
    pub recall: f64,
    /// `1 − |candidates| / (|T_A| · |T_B|)`: fraction of the cross product
    /// pruned away.
    pub reduction_ratio: f64,
    /// Number of candidates emitted.
    pub candidates: usize,
}

impl BlockingReport {
    /// Evaluates a candidate set against gold matches (pairs of indices
    /// into the two tables).
    pub fn evaluate(
        candidates: &[(usize, usize)],
        gold_matches: &[(usize, usize)],
        table_a_len: usize,
        table_b_len: usize,
    ) -> Self {
        let cand_set: std::collections::HashSet<(usize, usize)> =
            candidates.iter().copied().collect();
        let found = gold_matches
            .iter()
            .filter(|&&pair| cand_set.contains(&pair))
            .count();
        let recall = if gold_matches.is_empty() {
            1.0
        } else {
            found as f64 / gold_matches.len() as f64
        };
        let cross = (table_a_len as f64 * table_b_len as f64).max(1.0);
        Self {
            recall,
            reduction_ratio: 1.0 - candidates.len() as f64 / cross,
            candidates: candidates.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::{RecordId, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(["title", "brand"]).unwrap())
    }

    fn rec(table: char, row: u32, title: &str, brand: &str) -> Record {
        let id = if table == 'a' {
            RecordId::a(row)
        } else {
            RecordId::b(row)
        };
        Record::new(id, schema(), vec![title.into(), brand.into()]).unwrap()
    }

    fn tables() -> (Vec<Record>, Vec<Record>) {
        let a = vec![
            rec('a', 0, "samsung galaxy s21 phone", "samsung"),
            rec('a', 1, "canon eos r5 camera", "canon"),
            rec('a', 2, "lenovo thinkpad x1 laptop", "lenovo"),
        ];
        let b = vec![
            rec('b', 0, "galaxy s21 by samsung", "samsung"),
            rec('b', 1, "eos r5 mirrorless canon", "canon"),
            rec('b', 2, "dell xps 13 laptop", "dell"),
        ];
        (a, b)
    }

    #[test]
    fn finds_true_matches() {
        let (a, b) = tables();
        let cands = TokenBlocker::default_blocker().candidates(&a, &b);
        assert!(cands.contains(&(0, 0)), "missed samsung match: {cands:?}");
        assert!(cands.contains(&(1, 1)), "missed canon match: {cands:?}");
    }

    #[test]
    fn prunes_unrelated_pairs() {
        let (a, b) = tables();
        let cands = TokenBlocker::default_blocker().candidates(&a, &b);
        assert!(
            !cands.contains(&(0, 2)),
            "samsung phone vs dell laptop survived"
        );
        assert!(!cands.contains(&(1, 0)));
    }

    #[test]
    fn min_shared_tokens_controls_looseness() {
        let (a, b) = tables();
        let loose = TokenBlocker::new(BlockerConfig { min_shared_tokens: 1, ..Default::default() })
            .candidates(&a, &b);
        let strict =
            TokenBlocker::new(BlockerConfig { min_shared_tokens: 3, ..Default::default() })
                .candidates(&a, &b);
        assert!(loose.len() >= strict.len());
    }

    #[test]
    fn cosine_floor_tightens() {
        let (a, b) = tables();
        let base = TokenBlocker::new(BlockerConfig { min_shared_tokens: 1, ..Default::default() })
            .candidates(&a, &b);
        let refined = TokenBlocker::new(BlockerConfig {
            min_shared_tokens: 1,
            min_cosine: Some(0.5),
            ..Default::default()
        })
        .candidates(&a, &b);
        assert!(refined.len() <= base.len());
        assert!(refined.contains(&(0, 0)));
    }

    #[test]
    fn stopwords_do_not_explode_candidates() {
        // Every record shares the token "laptop": with a low stopword
        // threshold it must not connect everything to everything.
        let a: Vec<Record> = (0..20)
            .map(|i| rec('a', i, &format!("laptop model {i}"), "x"))
            .collect();
        let b: Vec<Record> = (0..20)
            .map(|i| rec('b', i, &format!("laptop unit {i}"), "x"))
            .collect();
        let cands = TokenBlocker::new(BlockerConfig {
            min_shared_tokens: 1,
            stopword_df: 0.1,
            ..Default::default()
        })
        .candidates(&a, &b);
        assert!(
            cands.len() < 100,
            "stop word flooded candidates: {}",
            cands.len()
        );
    }

    #[test]
    fn report_metrics() {
        let report = BlockingReport::evaluate(&[(0, 0), (1, 1), (2, 2)], &[(0, 0), (1, 2)], 10, 10);
        assert!((report.recall - 0.5).abs() < 1e-12);
        assert!((report.reduction_ratio - 0.97).abs() < 1e-12);
        assert_eq!(report.candidates, 3);
    }

    #[test]
    fn empty_gold_recall_is_one() {
        let report = BlockingReport::evaluate(&[(0, 0)], &[], 2, 2);
        assert_eq!(report.recall, 1.0);
    }

    #[test]
    fn materialize_builds_pairs() {
        let (a, b) = tables();
        let a: Vec<Arc<Record>> = a.into_iter().map(Arc::new).collect();
        let b: Vec<Arc<Record>> = b.into_iter().map(Arc::new).collect();
        let pairs = TokenBlocker::materialize(&a, &b, &[(0, 0), (2, 2)]);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].a().id(), RecordId::a(0));
        assert_eq!(pairs[1].b().id(), RecordId::b(2));
    }

    #[test]
    fn empty_tables_yield_nothing() {
        let cands = TokenBlocker::default_blocker().candidates(&[], &[]);
        assert!(cands.is_empty());
    }
}
