//! Pair featurization for the PLM baseline simulators.

use er_core::EntityPair;
use text_sim::{jaccard_tokens, levenshtein_ratio, normalize};

/// Informative structure features of a pair: per attribute
/// `[levenshtein ratio, jaccard, missing-on-a, missing-on-b]`, plus a
/// global aggregate similarity. Length = `4·m + 1`.
pub fn base_features(pair: &EntityPair) -> Vec<f64> {
    let m = pair.a().schema().arity();
    let mut out = Vec::with_capacity(4 * m + 1);
    let mut agg = 0.0;
    for i in 0..m {
        let va = normalize(pair.a().value(i).unwrap_or(""));
        let vb = normalize(pair.b().value(i).unwrap_or(""));
        let (lr, jac) = if va.is_empty() || vb.is_empty() {
            (0.0, 0.0)
        } else {
            (levenshtein_ratio(&va, &vb), jaccard_tokens(&va, &vb))
        };
        out.push(lr);
        out.push(jac);
        out.push(if va.is_empty() { 1.0 } else { 0.0 });
        out.push(if vb.is_empty() { 1.0 } else { 0.0 });
        agg += 0.5 * (lr + jac);
    }
    out.push(agg / m.max(1) as f64);
    out
}

/// Featurization used by the simulated PLMs: [`base_features`] plus
/// `ctx_dim` **contextual pseudo-dimensions**.
///
/// Fine-tuning a transformer estimates millions of parameters over
/// high-dimensional contextual embeddings; with little labeled data the
/// model memorizes training idiosyncrasies that do not transfer. The
/// pseudo-dimensions reproduce that failure mode: each is a deterministic
/// hash of the pair's full text, so they are memorizable in training and
/// uninformative at test time. With enough data, L2-regularized training
/// learns to ignore them — which is exactly the sample-complexity curve of
/// Figure 7.
pub fn plm_features(pair: &EntityPair, ctx_dim: usize, model_seed: u64) -> Vec<f64> {
    let mut out = base_features(pair);
    let text = pair.serialize();
    let base_hash = fnv(text.as_bytes(), model_seed);
    out.reserve(ctx_dim);
    for d in 0..ctx_dim {
        let h = splitmix(base_hash ^ (d as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Map to roughly N(0, 0.3²) via a cheap uniform sum.
        let u1 = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
        let u2 = (h >> 32) as f64 / u32::MAX as f64;
        out.push((u1 + u2 - 1.0) * 0.6);
    }
    out
}

fn fnv(bytes: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, DatasetKind};

    #[test]
    fn base_feature_length() {
        let d = generate(DatasetKind::Beer, 1);
        let m = d.schema().arity();
        let f = base_features(&d.pairs()[0].pair);
        assert_eq!(f.len(), 4 * m + 1);
        for &x in &f {
            assert!((0.0..=1.0).contains(&x), "feature out of range: {x}");
        }
    }

    #[test]
    fn identical_pair_scores_high() {
        let d = generate(DatasetKind::FodorsZagats, 1);
        // Construct a self-pair from an existing record.
        let p = &d.pairs()[0].pair;
        let self_pair = er_core::EntityPair::new(
            er_core::PairId(0),
            std::sync::Arc::new(p.a().clone()),
            std::sync::Arc::new(p.a().clone()),
        )
        .unwrap();
        let f = base_features(&self_pair);
        let agg = f[f.len() - 1];
        assert!(agg > 0.95, "self-pair aggregate {agg}");
    }

    #[test]
    fn matches_separate_from_negatives_on_average() {
        let d = generate(DatasetKind::DblpAcm, 2);
        let mut pos = 0.0;
        let mut pos_n = 0;
        let mut neg = 0.0;
        let mut neg_n = 0;
        for p in d.pairs().iter().take(1500) {
            let f = base_features(&p.pair);
            let agg = f[f.len() - 1];
            if p.label.is_match() {
                pos += agg;
                pos_n += 1;
            } else {
                neg += agg;
                neg_n += 1;
            }
        }
        assert!(pos / pos_n as f64 > neg / neg_n as f64 + 0.1);
    }

    #[test]
    fn plm_features_extend_base() {
        let d = generate(DatasetKind::Beer, 1);
        let p = &d.pairs()[0].pair;
        let base = base_features(p);
        let full = plm_features(p, 64, 7);
        assert_eq!(full.len(), base.len() + 64);
        assert_eq!(&full[..base.len()], &base[..]);
    }

    #[test]
    fn ctx_dims_deterministic_per_pair_and_seed() {
        let d = generate(DatasetKind::Beer, 1);
        let p = &d.pairs()[0].pair;
        assert_eq!(plm_features(p, 32, 7), plm_features(p, 32, 7));
        assert_ne!(plm_features(p, 32, 7), plm_features(p, 32, 8));
    }

    #[test]
    fn ctx_dims_differ_across_pairs() {
        let d = generate(DatasetKind::Beer, 1);
        let a = plm_features(&d.pairs()[0].pair, 32, 7);
        let b = plm_features(&d.pairs()[1].pair, 32, 7);
        let base_len = a.len() - 32;
        assert_ne!(&a[base_len..], &b[base_len..]);
    }

    #[test]
    fn ctx_dims_bounded() {
        let d = generate(DatasetKind::ItunesAmazon, 3);
        for p in d.pairs().iter().take(50) {
            for &x in plm_features(&p.pair, 128, 1).iter() {
                assert!(x.abs() <= 1.0 + 1e-9);
            }
        }
    }
}
