//! Baseline matchers the paper compares BatchER against.
//!
//! * [`plm`] — simulated **PLM-based matchers** (Ditto, JointBERT, RobEM):
//!   trainable classifiers whose learning curves reproduce Figure 7's
//!   shape — they need hundreds to thousands of labeled pairs to approach
//!   BatchER's F1. See `DESIGN.md` §1 for why a
//!   logistic-regression-over-features emulation preserves the comparison.
//! * [`manual_prompt`] — the **ManualPrompt** baseline (Narayan et al.):
//!   standard one-question-per-call prompting with hand-designed
//!   demonstrations, evaluated for Table V.
//! * [`features`] / [`logistic`] — the shared featurizer and the SGD
//!   logistic-regression trainer underpinning the PLM simulators.

pub mod features;
pub mod logistic;
pub mod manual_prompt;
pub mod plm;

pub use manual_prompt::{ManualPrompt, ManualPromptOutcome};
pub use plm::{PlmKind, PlmMatcher, TrainOutcome};
