//! L2-regularized logistic regression trained with mini-batch SGD.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Epochs over the training set.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 penalty λ.
    pub l2: f64,
    /// Loss weight multiplier for positive (matching) examples — ER
    /// training sets are heavily imbalanced (Table II: ~10% matches).
    pub positive_weight: f64,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 30, lr: 0.15, l2: 1e-4, positive_weight: 1.0, seed: 42 }
    }
}

/// A trained logistic model.
#[derive(Debug, Clone)]
pub struct LogisticModel {
    weights: Vec<f64>,
    bias: f64,
    /// Decision threshold on the probability (tunable on validation data).
    pub threshold: f64,
}

impl LogisticModel {
    /// Trains on parallel `(features, label)` slices.
    ///
    /// # Panics
    /// Panics on empty input or ragged feature vectors — harness bugs.
    pub fn train(xs: &[Vec<f64>], ys: &[bool], config: TrainConfig) -> Self {
        assert!(!xs.is_empty(), "training set must be non-empty");
        assert_eq!(xs.len(), ys.len(), "features and labels must be parallel");
        let dim = xs[0].len();
        assert!(
            xs.iter().all(|x| x.len() == dim),
            "all feature vectors must share one dimension"
        );

        let mut weights = vec![0.0f64; dim];
        let mut bias = 0.0f64;
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);

        for epoch in 0..config.epochs {
            // Simple 1/sqrt decay keeps early progress fast and late
            // updates stable.
            let lr = config.lr / (1.0 + epoch as f64).sqrt();
            shuffle(&mut order, &mut rng);
            for &i in &order {
                let x = &xs[i];
                let y = if ys[i] { 1.0 } else { 0.0 };
                let w_i = if ys[i] { config.positive_weight } else { 1.0 };
                let p = sigmoid(dot(&weights, x) + bias);
                let grad = w_i * (p - y);
                for (w, &xi) in weights.iter_mut().zip(x) {
                    *w -= lr * (grad * xi + config.l2 * *w);
                }
                bias -= lr * grad;
            }
        }
        Self { weights, bias, threshold: 0.5 }
    }

    /// Match probability of a feature vector.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(dot(&self.weights, x) + self.bias)
    }

    /// Hard decision at the model's threshold.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= self.threshold
    }

    /// Tunes the decision threshold to maximize F1 on a validation set,
    /// scanning a fixed probability grid. No-op on an empty set.
    pub fn tune_threshold(&mut self, xs: &[Vec<f64>], ys: &[bool]) {
        if xs.is_empty() {
            return;
        }
        let probs: Vec<f64> = xs.iter().map(|x| self.predict_proba(x)).collect();
        let mut best = (self.threshold, f1_at(&probs, ys, self.threshold));
        for step in 1..20 {
            let t = step as f64 * 0.05;
            let f1 = f1_at(&probs, ys, t);
            if f1 > best.1 {
                best = (t, f1);
            }
        }
        self.threshold = best.0;
    }

    /// The learned weights (exposed for tests and diagnostics).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

fn f1_at(probs: &[f64], ys: &[bool], t: f64) -> f64 {
    let (mut tp, mut fp, mut fn_) = (0u64, 0u64, 0u64);
    for (&p, &y) in probs.iter().zip(ys) {
        match (y, p >= t) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fn_ += 1,
            (false, false) => {}
        }
    }
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fn_) as f64;
    2.0 * precision * recall / (precision + recall)
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn shuffle(indices: &mut [usize], rng: &mut StdRng) {
    for i in (1..indices.len()).rev() {
        let j = rng.gen_range(0..=i);
        indices.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy data: label = x0 > 0.5.
    fn toy(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let x0: f64 = rng.gen();
            let x1: f64 = rng.gen();
            xs.push(vec![x0, x1]);
            ys.push(x0 > 0.5);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_data() {
        let (xs, ys) = toy(400, 1);
        let model = LogisticModel::train(&xs, &ys, TrainConfig::default());
        let (txs, tys) = toy(200, 2);
        let correct = txs
            .iter()
            .zip(&tys)
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        assert!(correct > 180, "only {correct}/200 correct");
    }

    #[test]
    fn weight_on_informative_feature_dominates() {
        let (xs, ys) = toy(500, 3);
        let model = LogisticModel::train(&xs, &ys, TrainConfig::default());
        assert!(model.weights()[0].abs() > model.weights()[1].abs() * 3.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let (xs, ys) = toy(100, 4);
        let a = LogisticModel::train(&xs, &ys, TrainConfig::default());
        let b = LogisticModel::train(&xs, &ys, TrainConfig::default());
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn positive_weight_raises_recall() {
        // Imbalanced data: 5% positives with a weak signal.
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..1000 {
            let y = i % 20 == 0;
            let x0: f64 = if y {
                0.55 + 0.3 * rng.gen::<f64>()
            } else {
                0.45 * rng.gen::<f64>() + 0.2
            };
            xs.push(vec![x0]);
            ys.push(y);
        }
        let plain = LogisticModel::train(&xs, &ys, TrainConfig::default());
        let weighted = LogisticModel::train(
            &xs,
            &ys,
            TrainConfig { positive_weight: 8.0, ..Default::default() },
        );
        let recall = |m: &LogisticModel| {
            let tp = xs
                .iter()
                .zip(&ys)
                .filter(|(x, &y)| y && m.predict(x))
                .count();
            tp as f64 / ys.iter().filter(|&&y| y).count() as f64
        };
        assert!(recall(&weighted) >= recall(&plain));
    }

    #[test]
    fn threshold_tuning_improves_or_keeps_f1() {
        let (xs, ys) = toy(300, 6);
        let mut model = LogisticModel::train(&xs, &ys, TrainConfig::default());
        let before = f1_at(
            &xs.iter()
                .map(|x| model.predict_proba(x))
                .collect::<Vec<_>>(),
            &ys,
            model.threshold,
        );
        model.tune_threshold(&xs, &ys);
        let after = f1_at(
            &xs.iter()
                .map(|x| model.predict_proba(x))
                .collect::<Vec<_>>(),
            &ys,
            model.threshold,
        );
        assert!(after >= before - 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_panics() {
        let _ = LogisticModel::train(&[], &[], TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn ragged_labels_panic() {
        let _ = LogisticModel::train(&[vec![1.0]], &[], TrainConfig::default());
    }
}
