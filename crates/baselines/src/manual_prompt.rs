//! The ManualPrompt baseline (Narayan et al., VLDB 2023).
//!
//! Standard prompting — one question per API call — with *hand-designed*
//! demonstrations. The original work relies on a domain expert picking
//! prototypical matching/non-matching pairs and writing the prompt; we
//! emulate expert curation by selecting the most prototypical examples
//! from the labeled pool: the highest-similarity match and the
//! hardest-looking (most similar) non-match, which is what the published
//! prompts qualitatively contain.

use er_core::{BinaryConfusion, CostLedger, LabeledPair, MatchLabel};
use llm::{parse_answers, ChatApi, ChatRequest, LlmError, ModelKind};

use crate::features::base_features;

/// Configuration of the ManualPrompt baseline.
#[derive(Debug, Clone, Copy)]
pub struct ManualPrompt {
    /// Underlying model.
    pub model: ModelKind,
    /// Demonstrations per prompt (the paper's published prompts carry a
    /// handful; default 6 = 3 matches + 3 non-matches).
    pub demos: usize,
    /// Retries on unparseable output before counting the question as a
    /// non-match (the conservative default a practitioner falls back to).
    pub max_retries: u32,
}

impl Default for ManualPrompt {
    fn default() -> Self {
        Self { model: ModelKind::Gpt35Turbo0301, demos: 6, max_retries: 2 }
    }
}

/// Outcome of a ManualPrompt run.
#[derive(Debug, Clone)]
pub struct ManualPromptOutcome {
    /// Test confusion counts.
    pub confusion: BinaryConfusion,
    /// API cost ledger (no labeling cost: the expert writes demos from
    /// domain knowledge, which the paper does not bill).
    pub ledger: CostLedger,
    /// Questions whose answers stayed unparseable after retries.
    pub unparsed: usize,
}

impl ManualPrompt {
    /// Runs the baseline: selects expert demos from `pool`, then asks one
    /// question per call for every pair in `questions`.
    pub fn run(
        &self,
        api: &dyn ChatApi,
        pool: &[&LabeledPair],
        questions: &[&LabeledPair],
        seed: u64,
    ) -> Result<ManualPromptOutcome, LlmError> {
        let demos = expert_demos(pool, self.demos);
        let demo_block = render_demos(&demos);

        let mut confusion = BinaryConfusion::new();
        let mut ledger = CostLedger::new();
        let mut unparsed = 0usize;

        for (qi, q) in questions.iter().enumerate() {
            let prompt = format!(
                "This is an entity resolution task: decide whether the two entity \
                 descriptions refer to the same real-world entity.\n\n{demo_block}\n\
                 Q1: {}\n\nAnswer with yes or no.",
                q.pair.serialize()
            );
            let mut answer: Option<MatchLabel> = None;
            for attempt in 0..=self.max_retries {
                let request = ChatRequest::new(
                    self.model,
                    prompt.clone(),
                    seed ^ ((qi as u64) << 8) ^ attempt as u64,
                );
                match api.complete(&request) {
                    Ok(resp) => {
                        ledger.record_api_call(
                            resp.usage.prompt_tokens,
                            resp.usage.completion_tokens,
                            resp.cost,
                        );
                        if let Ok(labels) = parse_answers(&resp.content, 1) {
                            answer = Some(labels[0]);
                            break;
                        }
                    }
                    Err(LlmError::RateLimited) => continue,
                    Err(e) => return Err(e),
                }
            }
            let predicted = answer.unwrap_or_else(|| {
                unparsed += 1;
                MatchLabel::NonMatching
            });
            confusion.observe(q.label, predicted);
        }
        Ok(ManualPromptOutcome { confusion, ledger, unparsed })
    }
}

/// Picks `k` expert-style demonstrations: alternating prototypical matches
/// (highest aggregate similarity) and hard non-matches (most similar
/// negatives).
fn expert_demos<'p>(pool: &[&'p LabeledPair], k: usize) -> Vec<&'p LabeledPair> {
    let mut matches: Vec<(&LabeledPair, f64)> = Vec::new();
    let mut non_matches: Vec<(&LabeledPair, f64)> = Vec::new();
    for p in pool {
        let f = base_features(&p.pair);
        let agg = f[f.len() - 1];
        if p.label.is_match() {
            matches.push((p, agg));
        } else {
            non_matches.push((p, agg));
        }
    }
    // Prototypical matches: clear agreements. Hard negatives: the most
    // confusable non-matches — exactly what a domain expert shows a model.
    matches.sort_by(|a, b| b.1.total_cmp(&a.1));
    non_matches.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut out = Vec::with_capacity(k);
    let (mut mi, mut ni) = (0usize, 0usize);
    for i in 0..k {
        if i % 2 == 0 && mi < matches.len() {
            out.push(matches[mi].0);
            mi += 1;
        } else if ni < non_matches.len() {
            out.push(non_matches[ni].0);
            ni += 1;
        } else if mi < matches.len() {
            out.push(matches[mi].0);
            mi += 1;
        }
    }
    out
}

fn render_demos(demos: &[&LabeledPair]) -> String {
    let mut out = String::from("Demonstrations:\n");
    for (i, d) in demos.iter().enumerate() {
        let verdict = if d.label.is_match() { "yes" } else { "no" };
        out.push_str(&format!(
            "D{}: {} => {verdict}\n",
            i + 1,
            d.pair.serialize()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, DatasetKind};
    use llm::SimLlm;

    #[test]
    fn runs_end_to_end_with_sane_accuracy() {
        let d = generate(DatasetKind::FodorsZagats, 4);
        let split = d.split_3_1_1(1).unwrap();
        let baseline = ManualPrompt::default();
        let api = SimLlm::new();
        let outcome = baseline
            .run(
                &api,
                &split.train,
                &split.test[..120.min(split.test.len())],
                7,
            )
            .unwrap();
        assert_eq!(
            outcome.confusion.total() as usize,
            120.min(split.test.len())
        );
        assert!(
            outcome.confusion.f1() > 0.5,
            "ManualPrompt F1 implausibly low: {}",
            outcome.confusion.f1()
        );
        // One API call per question (no retries needed on clean runs).
        assert!(outcome.ledger.api_calls >= 120.min(split.test.len()) as u64);
        assert!(outcome.ledger.labeling == er_core::Money::ZERO);
    }

    #[test]
    fn expert_demos_are_balanced() {
        let d = generate(DatasetKind::Beer, 4);
        let pool: Vec<&LabeledPair> = d.pairs().iter().collect();
        let demos = expert_demos(&pool, 6);
        assert_eq!(demos.len(), 6);
        let matches = demos.iter().filter(|d| d.label.is_match()).count();
        assert_eq!(matches, 3);
    }

    #[test]
    fn expert_demos_handle_tiny_pools() {
        let d = generate(DatasetKind::Beer, 4);
        let only_matches: Vec<&LabeledPair> = d
            .pairs()
            .iter()
            .filter(|p| p.label.is_match())
            .take(2)
            .collect();
        let demos = expert_demos(&only_matches, 6);
        assert_eq!(demos.len(), 2);
    }

    #[test]
    fn unparseable_outputs_counted_and_defaulted() {
        let d = generate(DatasetKind::Beer, 4);
        let split = d.split_3_1_1(1).unwrap();
        // Llama2 answers single questions, so force malformed output
        // instead.
        let api = llm::SimLlm::with_config(llm::SimLlmConfig {
            malformed_rate: 1.0,
            ..Default::default()
        });
        let baseline = ManualPrompt { max_retries: 1, ..Default::default() };
        let outcome = baseline
            .run(&api, &split.train, &split.test[..5], 3)
            .unwrap();
        assert_eq!(outcome.unparsed, 5);
        assert_eq!(outcome.confusion.total(), 5);
    }
}
