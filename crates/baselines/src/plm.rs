//! Simulated PLM-based matchers: Ditto, JointBERT, RobEM.
//!
//! Each baseline is a logistic matcher over [`crate::features::plm_features`]
//! with a per-baseline profile controlling the contextual dimensionality
//! (sample complexity), regularization and class weighting. Calibrated to
//! reproduce Figure 7's shape: all three need hundreds to thousands of
//! labeled pairs to approach BatchER, with RobEM the most label-efficient
//! (its contribution is robustness to data imbalance) and JointBERT the
//! hungriest.

use er_core::{BinaryConfusion, LabeledPair};

use crate::features::plm_features;
use crate::logistic::{LogisticModel, TrainConfig};

/// The three PLM baselines of §VI-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlmKind {
    /// Ditto (Li et al., VLDB 2020) — RoBERTa fine-tuning with domain
    /// knowledge injection.
    Ditto,
    /// JointBERT (Peeters & Bizer, VLDB 2021) — dual-objective BERT.
    JointBert,
    /// RobEM (Akbarian Rastaghi et al., CIKM 2022) — robustness-focused
    /// PLM matcher addressing data imbalance.
    RobEm,
}

impl PlmKind {
    /// All baselines.
    pub const ALL: [PlmKind; 3] = [PlmKind::Ditto, PlmKind::JointBert, PlmKind::RobEm];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PlmKind::Ditto => "Ditto",
            PlmKind::JointBert => "JointBert",
            PlmKind::RobEm => "RobEM",
        }
    }

    /// Simulation profile: `(ctx_dim, train config, tunes threshold)`.
    ///
    /// * `ctx_dim` controls sample complexity — more contextual
    ///   pseudo-dimensions mean more labeled data needed before test F1
    ///   converges (see [`crate::features::plm_features`]).
    fn profile(self) -> (usize, TrainConfig, bool) {
        match self {
            PlmKind::Ditto => (
                560,
                TrainConfig { epochs: 40, lr: 0.2, l2: 3e-4, positive_weight: 2.0, seed: 11 },
                true,
            ),
            PlmKind::JointBert => (
                832,
                TrainConfig { epochs: 40, lr: 0.2, l2: 2e-4, positive_weight: 1.0, seed: 12 },
                false,
            ),
            PlmKind::RobEm => (
                416,
                TrainConfig { epochs: 40, lr: 0.2, l2: 5e-4, positive_weight: 4.0, seed: 13 },
                true,
            ),
        }
    }
}

impl std::fmt::Display for PlmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A trained PLM baseline.
#[derive(Debug)]
pub struct PlmMatcher {
    kind: PlmKind,
    model: LogisticModel,
    ctx_dim: usize,
    model_seed: u64,
}

/// Result of a train + evaluate run.
#[derive(Debug, Clone, Copy)]
pub struct TrainOutcome {
    /// Test-set confusion counts.
    pub confusion: BinaryConfusion,
    /// Number of training pairs actually used.
    pub train_size: usize,
}

impl PlmMatcher {
    /// Fine-tunes the baseline on `train` (optionally tuning its decision
    /// threshold on `valid`).
    ///
    /// # Panics
    /// Panics when `train` is empty.
    pub fn train(kind: PlmKind, train: &[&LabeledPair], valid: &[&LabeledPair]) -> Self {
        assert!(!train.is_empty(), "PLM fine-tuning requires labeled pairs");
        let (ctx_dim, config, tune) = kind.profile();
        let model_seed = config.seed;
        let xs: Vec<Vec<f64>> = train
            .iter()
            .map(|p| plm_features(&p.pair, ctx_dim, model_seed))
            .collect();
        let ys: Vec<bool> = train.iter().map(|p| p.label.is_match()).collect();
        let mut model = LogisticModel::train(&xs, &ys, config);
        if tune && !valid.is_empty() {
            let vxs: Vec<Vec<f64>> = valid
                .iter()
                .map(|p| plm_features(&p.pair, ctx_dim, model_seed))
                .collect();
            let vys: Vec<bool> = valid.iter().map(|p| p.label.is_match()).collect();
            model.tune_threshold(&vxs, &vys);
        }
        Self { kind, model, ctx_dim, model_seed }
    }

    /// Which baseline this is.
    pub fn kind(&self) -> PlmKind {
        self.kind
    }

    /// Predicts a single pair.
    pub fn predict(&self, pair: &LabeledPair) -> bool {
        self.model
            .predict(&plm_features(&pair.pair, self.ctx_dim, self.model_seed))
    }

    /// Evaluates on a test set.
    pub fn evaluate(&self, test: &[&LabeledPair]) -> BinaryConfusion {
        let mut confusion = BinaryConfusion::new();
        for pair in test {
            let predicted = er_core::MatchLabel::from_bool(self.predict(pair));
            confusion.observe(pair.label, predicted);
        }
        confusion
    }

    /// Trains on the first `train_size` pairs of `train` and evaluates on
    /// `test` — one point of a Figure 7 learning curve.
    pub fn learning_curve_point(
        kind: PlmKind,
        train: &[&LabeledPair],
        valid: &[&LabeledPair],
        test: &[&LabeledPair],
        train_size: usize,
    ) -> TrainOutcome {
        let used = &train[..train_size.min(train.len())];
        let matcher = Self::train(kind, used, valid);
        TrainOutcome { confusion: matcher.evaluate(test), train_size: used.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, DatasetKind};

    fn split(kind: DatasetKind) -> (Vec<LabeledPair>, ()) {
        let d = generate(kind, 21);
        (d.pairs().to_vec(), ())
    }

    #[test]
    fn more_data_helps() {
        let (pairs, ()) = split(DatasetKind::DblpAcm);
        let train: Vec<&LabeledPair> = pairs[..6000].iter().collect();
        let valid: Vec<&LabeledPair> = pairs[6000..7000].iter().collect();
        let test: Vec<&LabeledPair> = pairs[7000..9000].iter().collect();
        let small = PlmMatcher::learning_curve_point(PlmKind::Ditto, &train, &valid, &test, 50);
        let large = PlmMatcher::learning_curve_point(PlmKind::Ditto, &train, &valid, &test, 4000);
        assert!(
            large.confusion.f1() > small.confusion.f1() + 0.03,
            "no learning-curve growth: {} -> {}",
            small.confusion.f1(),
            large.confusion.f1()
        );
        assert!(
            large.confusion.f1() > 0.75,
            "converged F1 too low: {}",
            large.confusion.f1()
        );
    }

    #[test]
    fn robem_beats_jointbert_on_small_data() {
        // RobEM's contribution is label efficiency under imbalance; with 100
        // training pairs it should not be behind JointBERT.
        let (pairs, ()) = split(DatasetKind::WalmartAmazon);
        let train: Vec<&LabeledPair> = pairs[..4000].iter().collect();
        let valid: Vec<&LabeledPair> = pairs[4000..4800].iter().collect();
        let test: Vec<&LabeledPair> = pairs[4800..6800].iter().collect();
        let robem = PlmMatcher::learning_curve_point(PlmKind::RobEm, &train, &valid, &test, 100);
        let jointbert =
            PlmMatcher::learning_curve_point(PlmKind::JointBert, &train, &valid, &test, 100);
        assert!(
            robem.confusion.f1() + 0.02 >= jointbert.confusion.f1(),
            "RobEM {} vs JointBERT {}",
            robem.confusion.f1(),
            jointbert.confusion.f1()
        );
    }

    #[test]
    fn evaluation_counts_every_pair() {
        let (pairs, ()) = split(DatasetKind::Beer);
        let train: Vec<&LabeledPair> = pairs[..300].iter().collect();
        let test: Vec<&LabeledPair> = pairs[300..].iter().collect();
        let matcher = PlmMatcher::train(PlmKind::Ditto, &train, &[]);
        let confusion = matcher.evaluate(&test);
        assert_eq!(confusion.total() as usize, test.len());
    }

    #[test]
    fn names_and_display() {
        assert_eq!(PlmKind::Ditto.to_string(), "Ditto");
        assert_eq!(PlmKind::ALL.len(), 3);
    }

    #[test]
    #[should_panic(expected = "labeled pairs")]
    fn empty_training_panics() {
        let _ = PlmMatcher::train(PlmKind::Ditto, &[], &[]);
    }
}
