//! DBSCAN (Ester et al., KDD 1996) — the paper's default question
//! clustering algorithm.

use crate::Clustering;

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy)]
pub struct DbscanParams {
    /// Neighborhood radius ε.
    pub eps: f64,
    /// Minimum neighborhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Default for DbscanParams {
    fn default() -> Self {
        Self { eps: 0.5, min_pts: 4 }
    }
}

/// Runs DBSCAN over `points` with distance function `dist`.
///
/// Noise points are **not** discarded: each becomes its own singleton
/// cluster, appended after the density clusters. The batching stage must
/// place every question in some batch, so a total assignment is part of
/// this function's contract.
pub fn dbscan<D>(points: &[Vec<f64>], params: DbscanParams, dist: D) -> Clustering
where
    D: Fn(&[f64], &[f64]) -> f64,
{
    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;

    let n = points.len();
    let mut labels = vec![UNVISITED; n];
    let mut next_cluster = 0usize;

    let neighbors = |i: usize| -> Vec<usize> {
        (0..n)
            .filter(|&j| dist(&points[i], &points[j]) <= params.eps)
            .collect()
    };

    for i in 0..n {
        if labels[i] != UNVISITED {
            continue;
        }
        let seeds = neighbors(i);
        if seeds.len() < params.min_pts {
            labels[i] = NOISE;
            continue;
        }
        // i is a core point: start a new cluster and expand.
        let cid = next_cluster;
        next_cluster += 1;
        labels[i] = cid;
        let mut queue: Vec<usize> = seeds;
        let mut qi = 0;
        while qi < queue.len() {
            let p = queue[qi];
            qi += 1;
            if labels[p] == NOISE {
                // Border point reachable from a core point.
                labels[p] = cid;
            }
            if labels[p] != UNVISITED {
                continue;
            }
            labels[p] = cid;
            let p_neighbors = neighbors(p);
            if p_neighbors.len() >= params.min_pts {
                queue.extend(p_neighbors);
            }
        }
    }

    // Promote remaining noise points to singleton clusters.
    for label in labels.iter_mut() {
        if *label == NOISE || *label == UNVISITED {
            *label = next_cluster;
            next_cluster += 1;
        }
    }

    Clustering { assignment: labels, n_clusters: next_cluster }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean;

    /// Two tight blobs far apart plus one outlier.
    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(vec![0.0 + i as f64 * 0.01, 0.0]);
        }
        for i in 0..5 {
            pts.push(vec![10.0 + i as f64 * 0.01, 10.0]);
        }
        pts.push(vec![100.0, -100.0]); // outlier
        pts
    }

    #[test]
    fn separates_blobs_and_isolates_outlier() {
        let c = dbscan(&blobs(), DbscanParams { eps: 0.5, min_pts: 3 }, euclidean);
        assert!(c.is_consistent());
        assert_eq!(c.n_clusters, 3);
        // First five together, next five together, outlier alone.
        assert!(c.assignment[..5].iter().all(|&x| x == c.assignment[0]));
        assert!(c.assignment[5..10].iter().all(|&x| x == c.assignment[5]));
        assert_ne!(c.assignment[0], c.assignment[5]);
        assert_ne!(c.assignment[10], c.assignment[0]);
        assert_ne!(c.assignment[10], c.assignment[5]);
    }

    #[test]
    fn everything_noise_when_eps_tiny() {
        let c = dbscan(&blobs(), DbscanParams { eps: 1e-9, min_pts: 2 }, euclidean);
        assert!(c.is_consistent());
        assert_eq!(c.n_clusters, blobs().len());
    }

    #[test]
    fn one_cluster_when_eps_huge() {
        let c = dbscan(&blobs(), DbscanParams { eps: 1e6, min_pts: 2 }, euclidean);
        assert!(c.is_consistent());
        assert_eq!(c.n_clusters, 1);
    }

    #[test]
    fn empty_input() {
        let c = dbscan(&[], DbscanParams::default(), euclidean);
        assert_eq!(c.n_clusters, 0);
        assert!(c.assignment.is_empty());
    }

    #[test]
    fn single_point_is_singleton() {
        let c = dbscan(&[vec![1.0, 2.0]], DbscanParams::default(), euclidean);
        assert_eq!(c.n_clusters, 1);
        assert_eq!(c.assignment, vec![0]);
    }

    #[test]
    fn border_points_join_cluster() {
        // A line of points each 0.4 apart: with eps=0.5, min_pts=3, interior
        // points are core; the chain should form one cluster.
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.4]).collect();
        let c = dbscan(&pts, DbscanParams { eps: 0.5, min_pts: 3 }, euclidean);
        assert!(c.is_consistent());
        assert_eq!(c.n_clusters, 1);
    }

    #[test]
    fn total_assignment_always() {
        // Every point receives a valid cluster id, whatever the params.
        for min_pts in [1usize, 2, 5, 20] {
            for eps in [0.01, 0.5, 3.0] {
                let c = dbscan(&blobs(), DbscanParams { eps, min_pts }, euclidean);
                assert!(c.is_consistent(), "eps={eps} min_pts={min_pts}");
                assert_eq!(c.assignment.len(), blobs().len());
            }
        }
    }
}
