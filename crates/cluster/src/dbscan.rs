//! DBSCAN (Ester et al., KDD 1996) — the paper's default question
//! clustering algorithm.
//!
//! Two front ends, one semantics:
//!
//! * [`dbscan`] — the reference implementation over `&[Vec<f64>]` with a
//!   pluggable distance function and brute-force O(n) region queries.
//! * [`dbscan_matrix`] — the production path over a contiguous
//!   [`FeatureMatrix`] (Euclidean metric), built on a [`WindowIndex`]:
//!   points sorted by distance to one extremal pivot, rows gathered into
//!   that order, so each ε-query is a binary-searched **contiguous
//!   window scan** comparing squared distances (no `sqrt` in any hot
//!   loop). On multiple cores it materializes all region queries in
//!   parallel shards and runs BFS expansion; on one core it runs an
//!   allocation-free **union-find** over a symmetric pair sweep. All
//!   three paths produce identical clusterings (the expansion's output
//!   is order-free — see [`dbscan_union_find`] — which the tests pin).

use embed::matrix::FeatureMatrix;
use embed::par::par_map;

use crate::Clustering;

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy)]
pub struct DbscanParams {
    /// Neighborhood radius ε.
    pub eps: f64,
    /// Minimum neighborhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Default for DbscanParams {
    fn default() -> Self {
        Self { eps: 0.5, min_pts: 4 }
    }
}

/// Runs DBSCAN over `points` with distance function `dist` (brute-force
/// region queries; the [`dbscan_matrix`] kernel path is preferred for
/// Euclidean workloads).
///
/// Noise points are **not** discarded: each becomes its own singleton
/// cluster, appended after the density clusters. The batching stage must
/// place every question in some batch, so a total assignment is part of
/// this function's contract.
pub fn dbscan<D>(points: &[Vec<f64>], params: DbscanParams, dist: D) -> Clustering
where
    D: Fn(&[f64], &[f64]) -> f64,
{
    let n = points.len();
    assert!(n < u32::MAX as usize, "point count exceeds index width");
    expand_clusters(n, params.min_pts, |i| -> Vec<u32> {
        (0..n as u32)
            .filter(|&j| dist(&points[i], &points[j as usize]) <= params.eps)
            .collect()
    })
}

/// DBSCAN over a contiguous feature matrix under the Euclidean metric,
/// with pivot-window-pruned parallel region queries. Produces the same
/// clustering as `dbscan(points, params, euclidean)` up to floating-point
/// ties exactly on the ε boundary.
pub fn dbscan_matrix(matrix: &FeatureMatrix, params: DbscanParams) -> Clustering {
    let n = matrix.len();
    assert!(n < u32::MAX as usize, "point count exceeds index width");
    if n == 0 {
        return Clustering { assignment: vec![], n_clusters: 0 };
    }
    let index = WindowIndex::build(matrix);
    if embed::par::shard_count(n, 8) > 1 {
        // Multi-core: materialize every region query up front in parallel
        // shards, then expand over borrowed lists. This trades memory for
        // parallelism — with a percentile-derived ε the lists total
        // Θ(density·n²) ids — which is the right trade for the serving
        // layer's flush sizes; the single-core branch below stays
        // allocation-free.
        let lists: Vec<Vec<u32>> = par_map(n, 8, |i| index.neighbors(matrix, i, params.eps));
        expand_clusters(n, params.min_pts, |i| lists[i].as_slice())
    } else {
        // Single-thread: union-find over one symmetric pair sweep — no
        // neighbor list is ever materialized. Produces the same labels
        // as the expansion (see `dbscan_union_find`).
        dbscan_union_find(&index, params)
    }
}

/// Materializes every ε-region query of `matrix` (Euclidean metric) via
/// the pivot-window index: `lists[i]` holds the ids of all points within
/// ε of point `i` — **including `i` itself** — ascending.
///
/// This is exactly the neighbor structure the multi-core
/// [`dbscan_matrix`] path expands over; callers that maintain the lists
/// incrementally (the batcher's incremental planner) rebuild them here on
/// a full re-plan and feed them back through
/// [`dbscan_from_neighbor_lists`].
pub fn dbscan_neighbor_lists(matrix: &FeatureMatrix, eps: f64) -> Vec<Vec<u32>> {
    let n = matrix.len();
    assert!(n < u32::MAX as usize, "point count exceeds index width");
    if n == 0 {
        return Vec::new();
    }
    let index = WindowIndex::build(matrix);
    par_map(n, 8, |i| index.neighbors(matrix, i, eps))
}

/// DBSCAN expansion over pre-materialized region queries: `lists[i]` must
/// contain every point within ε of `i`, including `i` itself (the output
/// of [`dbscan_neighbor_lists`], or lists maintained incrementally under
/// the same ε). Produces the identical clustering to [`dbscan_matrix`]
/// over the matrix the lists were derived from.
pub fn dbscan_from_neighbor_lists(lists: &[Vec<u32>], min_pts: usize) -> Clustering {
    expand_clusters(lists.len(), min_pts, |i| lists[i].as_slice())
}

/// Union-find DBSCAN over the window index's symmetric pair sweep.
///
/// Equivalent to BFS expansion because the expansion's output is
/// order-free under the hood:
///
/// * core points cluster by ε-connectivity (a pure union-find problem);
/// * cluster ids follow founding order, and a cluster is always founded
///   by its minimum-id core point (any earlier core would have founded
///   it first), so ids are the rank of each component's min core id;
/// * a border point joins the **earliest-founded** cluster among its
///   core neighbors — clusters expand one at a time in founding order,
///   and whichever reaches the border first keeps it;
/// * leftovers become singleton clusters in id order.
///
/// Each unordered within-ε pair is visited twice (a counting pass to
/// decide core-ness, then a union/attach pass), which costs the same
/// distance work as one full region query per point but touches no
/// per-point allocation at all.
fn dbscan_union_find(index: &WindowIndex, params: DbscanParams) -> Clustering {
    let n = index.ids.len();
    let min_pts = params.min_pts;

    // Pass 1: neighbor counts (self excluded here, included by `+ 1`),
    // recording the hit pattern for the replay pass.
    let mut counts = vec![0u32; n];
    let hits = index.sweep_close_pairs(params.eps, |a, b| {
        counts[a] += 1;
        counts[b] += 1;
    });
    let core: Vec<bool> = counts.iter().map(|&c| c as usize + 1 >= min_pts).collect();

    // Pass 2: union core pairs, record border→core adjacencies. A border
    // point has fewer than `min_pts` neighbors in total, so its core
    // list is tiny by definition.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            // Path halving.
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut border: Vec<(u32, u32)> = Vec::new();
    index.replay_close_pairs(params.eps, &hits, |a, b| match (core[a], core[b]) {
        (true, true) => {
            let ra = find(&mut parent, a as u32);
            let rb = find(&mut parent, b as u32);
            if ra != rb {
                // Smaller root id wins — any deterministic rule works,
                // the component is what matters.
                if ra < rb {
                    parent[rb as usize] = ra;
                } else {
                    parent[ra as usize] = rb;
                }
            }
        }
        (true, false) => border.push((b as u32, a as u32)),
        (false, true) => border.push((a as u32, b as u32)),
        (false, false) => {}
    });

    // Labels: cores first (founding order = min-core-id order), then
    // borders (earliest-founded cluster among core neighbors), then
    // singletons in id order.
    const UNSET: usize = usize::MAX;
    let mut labels = vec![UNSET; n];
    let mut cluster_of_root = vec![UNSET; n];
    let mut next_cluster = 0usize;
    for i in 0..n {
        if core[i] {
            let root = find(&mut parent, i as u32) as usize;
            if cluster_of_root[root] == UNSET {
                cluster_of_root[root] = next_cluster;
                next_cluster += 1;
            }
            labels[i] = cluster_of_root[root];
        }
    }
    for &(b, c) in &border {
        let label = labels[c as usize];
        if labels[b as usize] == UNSET || label < labels[b as usize] {
            labels[b as usize] = label;
        }
    }
    for label in labels.iter_mut() {
        if *label == UNSET {
            *label = next_cluster;
            next_cluster += 1;
        }
    }
    Clustering { assignment: labels, n_clusters: next_cluster }
}

/// The shared expansion core: BFS from each unvisited core point, border
/// points join the first cluster that reaches them, leftovers become
/// singleton clusters.
///
/// The queue admits only still-unlabeled points (a point already in some
/// cluster can never be relabeled, so enqueueing it was always dead
/// work); with percentile-derived ε the neighbor volume is Θ(n²·density)
/// while the queue now stays O(n) per cluster.
fn expand_clusters<N, V>(n: usize, min_pts: usize, mut neighbors: N) -> Clustering
where
    N: FnMut(usize) -> V,
    V: AsRef<[u32]>,
{
    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;

    let mut labels = vec![UNVISITED; n];
    let mut next_cluster = 0usize;
    let mut queue: Vec<u32> = Vec::new();

    for i in 0..n {
        if labels[i] != UNVISITED {
            continue;
        }
        let seeds = neighbors(i);
        let seeds = seeds.as_ref();
        if seeds.len() < min_pts {
            labels[i] = NOISE;
            continue;
        }
        // i is a core point: start a new cluster and expand.
        let cid = next_cluster;
        next_cluster += 1;
        labels[i] = cid;
        queue.clear();
        queue.extend(
            seeds
                .iter()
                .filter(|&&p| matches!(labels[p as usize], UNVISITED | NOISE)),
        );
        let mut qi = 0;
        while qi < queue.len() {
            let p = queue[qi] as usize;
            qi += 1;
            if labels[p] == NOISE {
                // Border point reachable from a core point.
                labels[p] = cid;
            }
            if labels[p] != UNVISITED {
                continue;
            }
            labels[p] = cid;
            let p_neighbors = neighbors(p);
            let p_neighbors = p_neighbors.as_ref();
            if p_neighbors.len() >= min_pts {
                queue.extend(
                    p_neighbors
                        .iter()
                        .filter(|&&q| matches!(labels[q as usize], UNVISITED | NOISE)),
                );
            }
        }
    }

    // Promote remaining noise points to singleton clusters.
    for label in labels.iter_mut() {
        if *label == NOISE || *label == UNVISITED {
            *label = next_cluster;
            next_cluster += 1;
        }
    }

    Clustering { assignment: labels, n_clusters: next_cluster }
}

/// Pivot-window pruning index. Points are sorted by their distance to
/// one extremal pivot; the triangle inequality confines every
/// ε-neighborhood to a contiguous window of that order, found by binary
/// search. The feature rows are **gathered into window order** so the
/// candidate scan streams one contiguous buffer, and survivors are
/// marked in a bitmap whose sweep emits neighbor ids ascending — the
/// same order the brute-force scan produces, with no per-list sort.
struct WindowIndex {
    /// Feature rows gathered in window order (row `k` = point `ids[k]`).
    perm: Vec<f64>,
    dim: usize,
    /// Original point id at each window position.
    ids: Vec<u32>,
    /// Pivot distance at each window position (the binary-search key).
    sorted_d0: Vec<f64>,
    /// Pivot distance by original point id.
    d0: Vec<f64>,
    /// Additive pruning slack covering the rounding of computed pivot
    /// distances, so the window never drops a true ε-neighbor.
    slack: f64,
}

impl WindowIndex {
    fn build(matrix: &FeatureMatrix) -> Self {
        let n = matrix.len();
        let dim = matrix.dim();
        // An extremal pivot (farthest point from point 0) spreads the
        // distance key as widely as the data allows, which is what keeps
        // the windows narrow.
        let from_zero = par_map(n, 256, |j| matrix.sq_dist_rows(0, j));
        let mut pivot = 0usize;
        let mut far = f64::NEG_INFINITY;
        for (j, &d) in from_zero.iter().enumerate() {
            if d > far {
                far = d;
                pivot = j;
            }
        }
        let d0: Vec<f64> = par_map(n, 256, |j| matrix.sq_dist_rows(pivot, j).sqrt());

        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.sort_unstable_by(|&a, &b| d0[a as usize].total_cmp(&d0[b as usize]).then(a.cmp(&b)));
        let sorted_d0: Vec<f64> = ids.iter().map(|&j| d0[j as usize]).collect();
        let mut perm = vec![0.0f64; n * dim];
        for (k, &j) in ids.iter().enumerate() {
            perm[k * dim..(k + 1) * dim].copy_from_slice(matrix.row(j as usize));
        }
        let max_d = sorted_d0.last().copied().unwrap_or(0.0);
        Self { perm, dim, ids, sorted_d0, d0, slack: 1e-9 + 1e-12 * max_d }
    }

    /// All points within ε of `i` (including `i`), ascending by id.
    fn neighbors(&self, matrix: &FeatureMatrix, i: usize, eps: f64) -> Vec<u32> {
        if self.dim == 0 {
            // Zero-dimensional space: every point is at distance 0.
            return (0..self.ids.len() as u32).collect();
        }
        let pad = eps + self.slack;
        let eps_sq = eps * eps;
        let d0 = self.d0[i];
        let lo = self.sorted_d0.partition_point(|&v| v < d0 - pad);
        let hi = self.sorted_d0.partition_point(|&v| v <= d0 + pad);
        let query = matrix.row(i);
        let window = &self.perm[lo * self.dim..hi * self.dim];
        let ids = &self.ids[lo..hi];
        let n_words = self.ids.len().div_ceil(64);
        let mut hits = vec![0u64; n_words];
        let mut count = 0usize;
        // The shared threshold-scan kernel (monomorphized per small
        // dimension) marks survivors in an id bitmap.
        embed::matrix::scan_rows_within::<false>(self.dim, query, window, eps_sq, |k| {
            let id = ids[k];
            hits[(id / 64) as usize] |= 1u64 << (id % 64);
            count += 1;
        });
        // Bitmap sweep: ids come out ascending, matching the brute-force
        // scan's expansion order.
        let mut out = Vec::with_capacity(count);
        for (w, &word) in hits.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push((w as u32) * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }
}

impl WindowIndex {
    /// Visits every unordered pair of points within ε exactly once
    /// (self-pairs excluded), as `(smaller_original_id, larger)` in a
    /// deterministic order, and returns the hit pattern as a bit stream
    /// aligned with the candidate enumeration — one forward half-window
    /// sweep over the gathered buffer: for sorted position `a`, the
    /// candidates are positions `a+1..` while the pivot-distance gap
    /// stays within `ε + slack`. [`WindowIndex::replay_close_pairs`]
    /// re-delivers the same pairs from the bits without recomputing a
    /// single distance.
    fn sweep_close_pairs(&self, eps: f64, mut on_pair: impl FnMut(usize, usize)) -> Vec<u64> {
        let eps_sq = eps * eps;
        let ends = self.window_ends(eps);
        let total: usize = ends
            .iter()
            .enumerate()
            .map(|(a, &hi)| hi as usize - (a + 1))
            .sum();
        let mut bits = vec![0u64; total.div_ceil(64)];
        let mut cursor = 0usize;
        let mut emit = |a: usize, b: usize| {
            let (ia, ib) = (self.ids[a] as usize, self.ids[b] as usize);
            on_pair(ia.min(ib), ia.max(ib));
        };
        match self.dim {
            1 => self.half_sweep::<1>(&ends, eps_sq, &mut bits, &mut cursor, &mut emit),
            2 => self.half_sweep::<2>(&ends, eps_sq, &mut bits, &mut cursor, &mut emit),
            3 => self.half_sweep::<3>(&ends, eps_sq, &mut bits, &mut cursor, &mut emit),
            4 => self.half_sweep::<4>(&ends, eps_sq, &mut bits, &mut cursor, &mut emit),
            5 => self.half_sweep::<5>(&ends, eps_sq, &mut bits, &mut cursor, &mut emit),
            6 => self.half_sweep::<6>(&ends, eps_sq, &mut bits, &mut cursor, &mut emit),
            7 => self.half_sweep::<7>(&ends, eps_sq, &mut bits, &mut cursor, &mut emit),
            8 => self.half_sweep::<8>(&ends, eps_sq, &mut bits, &mut cursor, &mut emit),
            dim => {
                let mut word = 0u64;
                for (a, &hi) in ends.iter().enumerate() {
                    let row_a = &self.perm[a * dim..(a + 1) * dim];
                    for b in a + 1..hi as usize {
                        let row_b = &self.perm[b * dim..(b + 1) * dim];
                        let hit = embed::sq_euclidean_distance(row_a, row_b) <= eps_sq;
                        word |= (hit as u64) << (cursor & 63);
                        cursor += 1;
                        if cursor & 63 == 0 {
                            bits[(cursor >> 6) - 1] = word;
                            word = 0;
                        }
                        if hit {
                            emit(a, b);
                        }
                    }
                }
                if cursor & 63 != 0 {
                    bits[cursor >> 6] = word;
                }
            }
        }
        bits
    }

    /// Second pass over the pairs recorded by
    /// [`WindowIndex::sweep_close_pairs`]: the identical candidate
    /// enumeration (same ε), with each hit decided by the stored bit —
    /// no distance arithmetic at all.
    fn replay_close_pairs(&self, eps: f64, bits: &[u64], mut on_pair: impl FnMut(usize, usize)) {
        let ends = self.window_ends(eps);
        let mut cursor = 0usize;
        for (a, &hi) in ends.iter().enumerate() {
            // Walk the window's bit range word by word, emitting set bits
            // only — no per-candidate loop.
            let start = cursor;
            let end = cursor + (hi as usize - (a + 1));
            cursor = end;
            let mut w = start >> 6;
            while w << 6 < end {
                let mut word = bits[w];
                // Mask off bits outside [start, end).
                if w << 6 < start {
                    word &= !0u64 << (start & 63);
                }
                if end < (w + 1) << 6 {
                    word &= (1u64 << (end & 63)) - 1;
                }
                while word != 0 {
                    let bit = (w << 6) + word.trailing_zeros() as usize;
                    let b = a + 1 + (bit - start);
                    let (ia, ib) = (self.ids[a] as usize, self.ids[b] as usize);
                    on_pair(ia.min(ib), ia.max(ib));
                    word &= word - 1;
                }
                w += 1;
            }
        }
    }

    /// Per-position exclusive end of the forward candidate window
    /// (`sorted_d0[b] ≤ sorted_d0[a] + ε + slack`); always ≥ `a + 1`.
    fn window_ends(&self, eps: f64) -> Vec<u32> {
        let pad = eps + self.slack;
        (0..self.ids.len())
            .map(|a| {
                let hi = self
                    .sorted_d0
                    .partition_point(|&v| v <= self.sorted_d0[a] + pad);
                hi.max(a + 1) as u32
            })
            .collect()
    }

    /// Monomorphized forward half-window sweep (positions, not ids):
    /// records every candidate's verdict as one bit and reports hits.
    fn half_sweep<const D: usize>(
        &self,
        ends: &[u32],
        eps_sq: f64,
        bits: &mut [u64],
        cursor: &mut usize,
        emit: &mut impl FnMut(usize, usize),
    ) {
        // The hit pattern accumulates in a register word, flushed once
        // per 64 candidates instead of a read-modify-write per candidate.
        let mut cur = *cursor;
        let mut word = 0u64;
        for (a, &hi) in ends.iter().enumerate() {
            let q: &[f64; D] = self.perm[a * D..(a + 1) * D]
                .try_into()
                .expect("row width matches dim");
            let window = &self.perm[(a + 1) * D..(hi as usize) * D];
            for (off, row) in window.chunks_exact(D).enumerate() {
                let mut even = 0.0f64;
                let mut odd = 0.0f64;
                let mut d = 0;
                while d + 1 < D {
                    let t0 = q[d] - row[d];
                    let t1 = q[d + 1] - row[d + 1];
                    even += t0 * t0;
                    odd += t1 * t1;
                    d += 2;
                }
                if d < D {
                    let t = q[d] - row[d];
                    even += t * t;
                }
                let hit = even + odd <= eps_sq;
                word |= (hit as u64) << (cur & 63);
                cur += 1;
                if cur & 63 == 0 {
                    bits[(cur >> 6) - 1] = word;
                    word = 0;
                }
                if hit {
                    emit(a, a + 1 + off);
                }
            }
        }
        if cur & 63 != 0 {
            bits[cur >> 6] = word;
        }
        *cursor = cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean;

    /// Two tight blobs far apart plus one outlier.
    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(vec![0.0 + i as f64 * 0.01, 0.0]);
        }
        for i in 0..5 {
            pts.push(vec![10.0 + i as f64 * 0.01, 10.0]);
        }
        pts.push(vec![100.0, -100.0]); // outlier
        pts
    }

    #[test]
    fn separates_blobs_and_isolates_outlier() {
        let c = dbscan(&blobs(), DbscanParams { eps: 0.5, min_pts: 3 }, euclidean);
        assert!(c.is_consistent());
        assert_eq!(c.n_clusters, 3);
        // First five together, next five together, outlier alone.
        assert!(c.assignment[..5].iter().all(|&x| x == c.assignment[0]));
        assert!(c.assignment[5..10].iter().all(|&x| x == c.assignment[5]));
        assert_ne!(c.assignment[0], c.assignment[5]);
        assert_ne!(c.assignment[10], c.assignment[0]);
        assert_ne!(c.assignment[10], c.assignment[5]);
    }

    #[test]
    fn everything_noise_when_eps_tiny() {
        let c = dbscan(&blobs(), DbscanParams { eps: 1e-9, min_pts: 2 }, euclidean);
        assert!(c.is_consistent());
        assert_eq!(c.n_clusters, blobs().len());
    }

    #[test]
    fn one_cluster_when_eps_huge() {
        let c = dbscan(&blobs(), DbscanParams { eps: 1e6, min_pts: 2 }, euclidean);
        assert!(c.is_consistent());
        assert_eq!(c.n_clusters, 1);
    }

    #[test]
    fn empty_input() {
        let c = dbscan(&[], DbscanParams::default(), euclidean);
        assert_eq!(c.n_clusters, 0);
        assert!(c.assignment.is_empty());
        let m = dbscan_matrix(&FeatureMatrix::from_rows(vec![]), DbscanParams::default());
        assert_eq!(m.n_clusters, 0);
    }

    #[test]
    fn single_point_is_singleton() {
        let c = dbscan(&[vec![1.0, 2.0]], DbscanParams::default(), euclidean);
        assert_eq!(c.n_clusters, 1);
        assert_eq!(c.assignment, vec![0]);
    }

    #[test]
    fn border_points_join_cluster() {
        // A line of points each 0.4 apart: with eps=0.5, min_pts=3, interior
        // points are core; the chain should form one cluster.
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.4]).collect();
        let c = dbscan(&pts, DbscanParams { eps: 0.5, min_pts: 3 }, euclidean);
        assert!(c.is_consistent());
        assert_eq!(c.n_clusters, 1);
    }

    #[test]
    fn total_assignment_always() {
        // Every point receives a valid cluster id, whatever the params.
        for min_pts in [1usize, 2, 5, 20] {
            for eps in [0.01, 0.5, 3.0] {
                let c = dbscan(&blobs(), DbscanParams { eps, min_pts }, euclidean);
                assert!(c.is_consistent(), "eps={eps} min_pts={min_pts}");
                assert_eq!(c.assignment.len(), blobs().len());
            }
        }
    }

    /// Deterministic pseudo-random points: three latent blobs plus a
    /// scatter of loners, the shape where pivot pruning has to work.
    fn scattered(n: usize, dim: usize) -> Vec<Vec<f64>> {
        let mut state = 0x9E37_79B9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| {
                let blob = (i % 4) as f64 * 2.5;
                (0..dim).map(|_| blob + next() * 0.8).collect()
            })
            .collect()
    }

    #[test]
    fn matrix_path_matches_brute_force() {
        for (n, dim) in [(1usize, 3usize), (7, 2), (60, 3), (150, 8), (300, 5)] {
            let pts = scattered(n, dim);
            let matrix = FeatureMatrix::from_rows(pts.clone());
            for eps in [0.2, 0.7, 1.5, 4.0] {
                for min_pts in [1usize, 3, 6] {
                    let params = DbscanParams { eps, min_pts };
                    let brute = dbscan(&pts, params, euclidean);
                    let fast = dbscan_matrix(&matrix, params);
                    assert_eq!(
                        brute, fast,
                        "n={n} dim={dim} eps={eps} min_pts={min_pts} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_path_serial_equals_parallel() {
        let pts = scattered(200, 6);
        let matrix = FeatureMatrix::from_rows(pts);
        let params = DbscanParams { eps: 0.9, min_pts: 3 };
        let parallel = dbscan_matrix(&matrix, params);
        let serial = embed::par::with_max_threads(1, || dbscan_matrix(&matrix, params));
        assert_eq!(parallel, serial);
    }

    #[test]
    fn union_find_and_expansion_paths_agree() {
        // The serial path runs union-find over the pair sweep, the
        // multi-core path runs BFS expansion over materialized region
        // queries; both must equal the brute-force reference exactly.
        for (n, dim) in [(40usize, 2usize), (150, 4), (260, 7)] {
            let pts = scattered(n, dim);
            let matrix = FeatureMatrix::from_rows(pts.clone());
            for eps in [0.3, 0.9, 2.5] {
                for min_pts in [1usize, 3, 7] {
                    let params = DbscanParams { eps, min_pts };
                    let brute = dbscan(&pts, params, euclidean);
                    let serial = embed::par::with_max_threads(1, || dbscan_matrix(&matrix, params));
                    let multi = embed::par::with_max_threads(8, || dbscan_matrix(&matrix, params));
                    assert_eq!(
                        brute, serial,
                        "n={n} dim={dim} eps={eps} min_pts={min_pts} serial"
                    );
                    assert_eq!(
                        brute, multi,
                        "n={n} dim={dim} eps={eps} min_pts={min_pts} multi"
                    );
                }
            }
        }
    }
}
