//! DBSCAN (Ester et al., KDD 1996) — the paper's default question
//! clustering algorithm.
//!
//! Two front ends, one semantics:
//!
//! * [`dbscan`] — the reference implementation over `&[Vec<f64>]` with a
//!   pluggable distance function and brute-force O(n) region queries.
//! * [`dbscan_matrix`] — the production path over a contiguous
//!   [`FeatureMatrix`] (Euclidean metric), with region queries served by
//!   the shared exact metric index ([`embed::index`]): pivot-table
//!   triangle-inequality pruning in front of the same threshold-scan
//!   kernel, so every ε-query returns the id set a brute-force scan
//!   would. On multiple cores it materializes all region queries in
//!   parallel shards and runs BFS expansion; on one core it runs an
//!   allocation-free **union-find** over the index's recorded symmetric
//!   pair sweep. All three paths produce identical clusterings (the
//!   expansion's output is order-free — see [`dbscan_union_find`] —
//!   which the tests pin).

use embed::index::{build_index, MetricIndex, PivotIndex};
use embed::matrix::FeatureMatrix;
use embed::par::par_map;

use crate::Clustering;

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy)]
pub struct DbscanParams {
    /// Neighborhood radius ε.
    pub eps: f64,
    /// Minimum neighborhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Default for DbscanParams {
    fn default() -> Self {
        Self { eps: 0.5, min_pts: 4 }
    }
}

/// Runs DBSCAN over `points` with distance function `dist` (brute-force
/// region queries; the [`dbscan_matrix`] kernel path is preferred for
/// Euclidean workloads).
///
/// Noise points are **not** discarded: each becomes its own singleton
/// cluster, appended after the density clusters. The batching stage must
/// place every question in some batch, so a total assignment is part of
/// this function's contract.
pub fn dbscan<D>(points: &[Vec<f64>], params: DbscanParams, dist: D) -> Clustering
where
    D: Fn(&[f64], &[f64]) -> f64,
{
    let n = points.len();
    assert!(n < u32::MAX as usize, "point count exceeds index width");
    expand_clusters(n, params.min_pts, |i| -> Vec<u32> {
        (0..n as u32)
            .filter(|&j| dist(&points[i], &points[j as usize]) <= params.eps)
            .collect()
    })
}

/// DBSCAN over a contiguous feature matrix under the Euclidean metric,
/// with index-pruned region queries. Produces the same clustering as
/// `dbscan(points, params, euclidean)` up to floating-point ties exactly
/// on the ε boundary. The index flavor follows the calling thread's
/// [`embed::index::IndexMode`].
pub fn dbscan_matrix(matrix: &FeatureMatrix, params: DbscanParams) -> Clustering {
    let n = matrix.len();
    assert!(n < u32::MAX as usize, "point count exceeds index width");
    if n == 0 {
        return Clustering { assignment: vec![], n_clusters: 0 };
    }
    let index = build_index(matrix);
    if embed::par::shard_count(n, 8) > 1 {
        // Multi-core: materialize every region query up front in parallel
        // shards, then expand over borrowed lists. This trades memory for
        // parallelism — with a percentile-derived ε the lists total
        // Θ(density·n²) ids — which is the right trade for the serving
        // layer's flush sizes; the single-core branch below stays
        // allocation-free.
        let lists: Vec<Vec<u32>> = par_map(n, 8, |i| {
            let mut out = Vec::new();
            index.within_row_into(i as u32, params.eps, false, &mut out);
            out
        });
        expand_clusters(n, params.min_pts, |i| lists[i].as_slice())
    } else {
        // Single-thread: union-find over one symmetric pair sweep — no
        // neighbor list is ever materialized. Produces the same labels
        // as the expansion (see `dbscan_union_find`).
        dbscan_union_find(&index, params)
    }
}

/// Materializes every ε-region query of `matrix` (Euclidean metric) via
/// the shared metric index: `lists[i]` holds the ids of all points within
/// ε of point `i` — **including `i` itself** — ascending.
///
/// This is exactly the neighbor structure the multi-core
/// [`dbscan_matrix`] path expands over; callers that maintain the lists
/// incrementally (the batcher's incremental planner) rebuild them here on
/// a full re-plan and feed them back through
/// [`dbscan_from_neighbor_lists`].
pub fn dbscan_neighbor_lists(matrix: &FeatureMatrix, eps: f64) -> Vec<Vec<u32>> {
    let n = matrix.len();
    assert!(n < u32::MAX as usize, "point count exceeds index width");
    if n == 0 {
        return Vec::new();
    }
    let index = build_index(matrix);
    par_map(n, 8, |i| {
        let mut out = Vec::new();
        index.within_row_into(i as u32, eps, false, &mut out);
        out
    })
}

/// DBSCAN expansion over pre-materialized region queries: `lists[i]` must
/// contain every point within ε of `i`, including `i` itself (the output
/// of [`dbscan_neighbor_lists`], or lists maintained incrementally under
/// the same ε). Produces the identical clustering to [`dbscan_matrix`]
/// over the matrix the lists were derived from.
pub fn dbscan_from_neighbor_lists(lists: &[Vec<u32>], min_pts: usize) -> Clustering {
    expand_clusters(lists.len(), min_pts, |i| lists[i].as_slice())
}

/// Union-find DBSCAN over the index's symmetric pair sweep.
///
/// Equivalent to BFS expansion because the expansion's output is
/// order-free under the hood:
///
/// * core points cluster by ε-connectivity (a pure union-find problem);
/// * cluster ids follow founding order, and a cluster is always founded
///   by its minimum-id core point (any earlier core would have founded
///   it first), so ids are the rank of each component's min core id;
/// * a border point joins the **earliest-founded** cluster among its
///   core neighbors — clusters expand one at a time in founding order,
///   and whichever reaches the border first keeps it;
/// * leftovers become singleton clusters in id order.
///
/// Each unordered within-ε pair is visited twice (a counting pass to
/// decide core-ness, then a union/attach pass replayed from the recorded
/// verdict bits), which costs the distance work of one symmetric sweep
/// but touches no per-point allocation at all.
fn dbscan_union_find(index: &PivotIndex, params: DbscanParams) -> Clustering {
    let n = index.len();
    let min_pts = params.min_pts;

    // Pass 1: neighbor counts (self excluded here, included by `+ 1`),
    // recording the verdict stream for the replay pass.
    let mut counts = vec![0u32; n];
    let sweep = index.close_pairs(params.eps, &mut counts);
    let core: Vec<bool> = counts.iter().map(|&c| c as usize + 1 >= min_pts).collect();

    // Pass 2: union core pairs, record border→core adjacencies. A border
    // point has fewer than `min_pts` neighbors in total, so its core
    // list is tiny by definition.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            // Path halving.
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut border: Vec<(u32, u32)> = Vec::new();
    index.replay_close_pairs(&sweep, &mut |a, b| {
        match (core[a as usize], core[b as usize]) {
            (true, true) => {
                let ra = find(&mut parent, a);
                let rb = find(&mut parent, b);
                if ra != rb {
                    // Smaller root id wins — any deterministic rule works,
                    // the component is what matters.
                    if ra < rb {
                        parent[rb as usize] = ra;
                    } else {
                        parent[ra as usize] = rb;
                    }
                }
            }
            (true, false) => border.push((b, a)),
            (false, true) => border.push((a, b)),
            (false, false) => {}
        }
    });

    // Labels: cores first (founding order = min-core-id order), then
    // borders (earliest-founded cluster among core neighbors), then
    // singletons in id order.
    const UNSET: usize = usize::MAX;
    let mut labels = vec![UNSET; n];
    let mut cluster_of_root = vec![UNSET; n];
    let mut next_cluster = 0usize;
    for i in 0..n {
        if core[i] {
            let root = find(&mut parent, i as u32) as usize;
            if cluster_of_root[root] == UNSET {
                cluster_of_root[root] = next_cluster;
                next_cluster += 1;
            }
            labels[i] = cluster_of_root[root];
        }
    }
    for &(b, c) in &border {
        let label = labels[c as usize];
        if labels[b as usize] == UNSET || label < labels[b as usize] {
            labels[b as usize] = label;
        }
    }
    for label in labels.iter_mut() {
        if *label == UNSET {
            *label = next_cluster;
            next_cluster += 1;
        }
    }
    Clustering { assignment: labels, n_clusters: next_cluster }
}

/// The shared expansion core: BFS from each unvisited core point, border
/// points join the first cluster that reaches them, leftovers become
/// singleton clusters.
///
/// The queue admits only still-unlabeled points (a point already in some
/// cluster can never be relabeled, so enqueueing it was always dead
/// work); with percentile-derived ε the neighbor volume is Θ(n²·density)
/// while the queue now stays O(n) per cluster.
fn expand_clusters<N, V>(n: usize, min_pts: usize, mut neighbors: N) -> Clustering
where
    N: FnMut(usize) -> V,
    V: AsRef<[u32]>,
{
    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;

    let mut labels = vec![UNVISITED; n];
    let mut next_cluster = 0usize;
    let mut queue: Vec<u32> = Vec::new();

    for i in 0..n {
        if labels[i] != UNVISITED {
            continue;
        }
        let seeds = neighbors(i);
        let seeds = seeds.as_ref();
        if seeds.len() < min_pts {
            labels[i] = NOISE;
            continue;
        }
        // i is a core point: start a new cluster and expand.
        let cid = next_cluster;
        next_cluster += 1;
        labels[i] = cid;
        queue.clear();
        queue.extend(
            seeds
                .iter()
                .filter(|&&p| matches!(labels[p as usize], UNVISITED | NOISE)),
        );
        let mut qi = 0;
        while qi < queue.len() {
            let p = queue[qi] as usize;
            qi += 1;
            if labels[p] == NOISE {
                // Border point reachable from a core point.
                labels[p] = cid;
            }
            if labels[p] != UNVISITED {
                continue;
            }
            labels[p] = cid;
            let p_neighbors = neighbors(p);
            let p_neighbors = p_neighbors.as_ref();
            if p_neighbors.len() >= min_pts {
                queue.extend(
                    p_neighbors
                        .iter()
                        .filter(|&&q| matches!(labels[q as usize], UNVISITED | NOISE)),
                );
            }
        }
    }

    // Promote remaining noise points to singleton clusters.
    for label in labels.iter_mut() {
        if *label == NOISE || *label == UNVISITED {
            *label = next_cluster;
            next_cluster += 1;
        }
    }

    Clustering { assignment: labels, n_clusters: next_cluster }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean;
    use embed::index::{with_index_mode, IndexMode};

    /// Two tight blobs far apart plus one outlier.
    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(vec![0.0 + i as f64 * 0.01, 0.0]);
        }
        for i in 0..5 {
            pts.push(vec![10.0 + i as f64 * 0.01, 10.0]);
        }
        pts.push(vec![100.0, -100.0]); // outlier
        pts
    }

    #[test]
    fn separates_blobs_and_isolates_outlier() {
        let c = dbscan(&blobs(), DbscanParams { eps: 0.5, min_pts: 3 }, euclidean);
        assert!(c.is_consistent());
        assert_eq!(c.n_clusters, 3);
        // First five together, next five together, outlier alone.
        assert!(c.assignment[..5].iter().all(|&x| x == c.assignment[0]));
        assert!(c.assignment[5..10].iter().all(|&x| x == c.assignment[5]));
        assert_ne!(c.assignment[0], c.assignment[5]);
        assert_ne!(c.assignment[10], c.assignment[0]);
        assert_ne!(c.assignment[10], c.assignment[5]);
    }

    #[test]
    fn everything_noise_when_eps_tiny() {
        let c = dbscan(&blobs(), DbscanParams { eps: 1e-9, min_pts: 2 }, euclidean);
        assert!(c.is_consistent());
        assert_eq!(c.n_clusters, blobs().len());
    }

    #[test]
    fn one_cluster_when_eps_huge() {
        let c = dbscan(&blobs(), DbscanParams { eps: 1e6, min_pts: 2 }, euclidean);
        assert!(c.is_consistent());
        assert_eq!(c.n_clusters, 1);
    }

    #[test]
    fn empty_input() {
        let c = dbscan(&[], DbscanParams::default(), euclidean);
        assert_eq!(c.n_clusters, 0);
        assert!(c.assignment.is_empty());
        let m = dbscan_matrix(&FeatureMatrix::from_rows(vec![]), DbscanParams::default());
        assert_eq!(m.n_clusters, 0);
    }

    #[test]
    fn single_point_is_singleton() {
        let c = dbscan(&[vec![1.0, 2.0]], DbscanParams::default(), euclidean);
        assert_eq!(c.n_clusters, 1);
        assert_eq!(c.assignment, vec![0]);
    }

    #[test]
    fn border_points_join_cluster() {
        // A line of points each 0.4 apart: with eps=0.5, min_pts=3, interior
        // points are core; the chain should form one cluster.
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.4]).collect();
        let c = dbscan(&pts, DbscanParams { eps: 0.5, min_pts: 3 }, euclidean);
        assert!(c.is_consistent());
        assert_eq!(c.n_clusters, 1);
    }

    #[test]
    fn total_assignment_always() {
        // Every point receives a valid cluster id, whatever the params.
        for min_pts in [1usize, 2, 5, 20] {
            for eps in [0.01, 0.5, 3.0] {
                let c = dbscan(&blobs(), DbscanParams { eps, min_pts }, euclidean);
                assert!(c.is_consistent(), "eps={eps} min_pts={min_pts}");
                assert_eq!(c.assignment.len(), blobs().len());
            }
        }
    }

    /// Deterministic pseudo-random points: three latent blobs plus a
    /// scatter of loners, the shape where pivot pruning has to work.
    fn scattered(n: usize, dim: usize) -> Vec<Vec<f64>> {
        let mut state = 0x9E37_79B9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| {
                let blob = (i % 4) as f64 * 2.5;
                (0..dim).map(|_| blob + next() * 0.8).collect()
            })
            .collect()
    }

    #[test]
    fn matrix_path_matches_brute_force() {
        for (n, dim) in [(1usize, 3usize), (7, 2), (60, 3), (150, 8), (300, 5)] {
            let pts = scattered(n, dim);
            let matrix = FeatureMatrix::from_rows(pts.clone());
            for eps in [0.2, 0.7, 1.5, 4.0] {
                for min_pts in [1usize, 3, 6] {
                    let params = DbscanParams { eps, min_pts };
                    let brute = dbscan(&pts, params, euclidean);
                    let fast = dbscan_matrix(&matrix, params);
                    assert_eq!(
                        brute, fast,
                        "n={n} dim={dim} eps={eps} min_pts={min_pts} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_path_serial_equals_parallel() {
        let pts = scattered(200, 6);
        let matrix = FeatureMatrix::from_rows(pts);
        let params = DbscanParams { eps: 0.9, min_pts: 3 };
        let parallel = dbscan_matrix(&matrix, params);
        let serial = embed::par::with_max_threads(1, || dbscan_matrix(&matrix, params));
        assert_eq!(parallel, serial);
    }

    #[test]
    fn union_find_and_expansion_paths_agree() {
        // The serial path runs union-find over the pair sweep, the
        // multi-core path runs BFS expansion over materialized region
        // queries; both must equal the brute-force reference exactly.
        for (n, dim) in [(40usize, 2usize), (150, 4), (260, 7)] {
            let pts = scattered(n, dim);
            let matrix = FeatureMatrix::from_rows(pts.clone());
            for eps in [0.3, 0.9, 2.5] {
                for min_pts in [1usize, 3, 7] {
                    let params = DbscanParams { eps, min_pts };
                    let brute = dbscan(&pts, params, euclidean);
                    let serial = embed::par::with_max_threads(1, || dbscan_matrix(&matrix, params));
                    let multi = embed::par::with_max_threads(8, || dbscan_matrix(&matrix, params));
                    assert_eq!(
                        brute, serial,
                        "n={n} dim={dim} eps={eps} min_pts={min_pts} serial"
                    );
                    assert_eq!(
                        brute, multi,
                        "n={n} dim={dim} eps={eps} min_pts={min_pts} multi"
                    );
                }
            }
        }
    }

    #[test]
    fn index_modes_agree_with_brute_force() {
        // The multi-pivot index and the single-pivot sweep reference must
        // both reproduce the brute clustering exactly, on both the
        // expansion and union-find branches.
        for (n, dim) in [(150usize, 4usize), (260, 7)] {
            let pts = scattered(n, dim);
            let matrix = FeatureMatrix::from_rows(pts.clone());
            for eps in [0.3, 0.9, 2.5] {
                let params = DbscanParams { eps, min_pts: 3 };
                let brute = dbscan(&pts, params, euclidean);
                for mode in [IndexMode::Auto, IndexMode::Sweep] {
                    let serial = with_index_mode(mode, || {
                        embed::par::with_max_threads(1, || dbscan_matrix(&matrix, params))
                    });
                    let multi = with_index_mode(mode, || {
                        embed::par::with_max_threads(8, || dbscan_matrix(&matrix, params))
                    });
                    assert_eq!(brute, serial, "n={n} dim={dim} eps={eps} {mode:?} serial");
                    assert_eq!(brute, multi, "n={n} dim={dim} eps={eps} {mode:?} multi");
                }
            }
        }
    }
}
