//! K-Means with kmeans++ initialization (ablation alternative to DBSCAN).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{euclidean, Clustering};

/// K-Means parameters.
#[derive(Debug, Clone, Copy)]
pub struct KMeansParams {
    /// Number of clusters `k` (clamped to the number of points).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for kmeans++ initialization.
    pub seed: u64,
}

impl Default for KMeansParams {
    fn default() -> Self {
        Self { k: 8, max_iters: 50, seed: 42 }
    }
}

/// Runs K-Means (Lloyd's algorithm, kmeans++ seeding, Euclidean metric).
///
/// Clusters that become empty during iteration are re-seeded with the
/// point farthest from its assigned centroid, so the output always has
/// exactly `min(k, n)` non-empty clusters.
pub fn kmeans(points: &[Vec<f64>], params: KMeansParams) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering { assignment: vec![], n_clusters: 0 };
    }
    let k = params.k.clamp(1, n);
    let dim = points[0].len();
    let mut rng = StdRng::seed_from_u64(params.seed);

    let mut centroids = init_plus_plus(points, k, &mut rng);
    let mut assignment = vec![0usize; n];

    for _ in 0..params.max_iters {
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = nearest_centroid(p, &centroids);
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (d, &x) in p.iter().enumerate() {
                sums[assignment[i]][d] += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the worst-fitted point.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = euclidean(&points[a], &centroids[assignment[a]]);
                        let db = euclidean(&points[b], &centroids[assignment[b]]);
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("n > 0");
                centroids[c] = points[far].clone();
                assignment[far] = c;
                changed = true;
            } else {
                for d in 0..dim {
                    centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    compact(assignment, k)
}

/// kmeans++ seeding: each next centroid is sampled proportionally to the
/// squared distance from the nearest already-chosen centroid.
fn init_plus_plus(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| {
                        let d = euclidean(p, c);
                        d * d
                    })
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        let choice = if total <= 0.0 {
            // All points coincide with existing centroids; any index works.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
            }
            idx
        };
        centroids.push(points[choice].clone());
    }
    centroids
}

fn nearest_centroid(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = euclidean(p, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Renumbers cluster ids densely (some may be empty after convergence on
/// degenerate data).
fn compact(assignment: Vec<usize>, k: usize) -> Clustering {
    let mut remap = vec![usize::MAX; k];
    let mut next = 0usize;
    let mut out = Vec::with_capacity(assignment.len());
    for cid in assignment {
        if remap[cid] == usize::MAX {
            remap[cid] = next;
            next += 1;
        }
        out.push(remap[cid]);
    }
    Clustering { assignment: out, n_clusters: next }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![i as f64 * 0.1, 0.0]);
        }
        for i in 0..10 {
            pts.push(vec![50.0 + i as f64 * 0.1, 50.0]);
        }
        pts
    }

    #[test]
    fn two_blobs_two_clusters() {
        let c = kmeans(&blobs(), KMeansParams { k: 2, max_iters: 100, seed: 1 });
        assert!(c.is_consistent());
        assert_eq!(c.n_clusters, 2);
        assert!(c.assignment[..10].iter().all(|&x| x == c.assignment[0]));
        assert!(c.assignment[10..].iter().all(|&x| x == c.assignment[10]));
        assert_ne!(c.assignment[0], c.assignment[10]);
    }

    #[test]
    fn k_clamped_to_n() {
        let pts = vec![vec![0.0], vec![1.0]];
        let c = kmeans(&pts, KMeansParams { k: 10, max_iters: 10, seed: 3 });
        assert!(c.is_consistent());
        assert!(c.n_clusters <= 2);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = kmeans(&blobs(), KMeansParams { k: 4, max_iters: 50, seed: 9 });
        let b = kmeans(&blobs(), KMeansParams { k: 4, max_iters: 50, seed: 9 });
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        let c = kmeans(&[], KMeansParams::default());
        assert_eq!(c.n_clusters, 0);
    }

    #[test]
    fn identical_points_collapse() {
        let pts = vec![vec![5.0, 5.0]; 12];
        let c = kmeans(&pts, KMeansParams { k: 3, max_iters: 20, seed: 7 });
        assert!(c.is_consistent());
        // All points identical: ids must be valid whatever the cluster count.
        assert_eq!(c.assignment.len(), 12);
    }

    #[test]
    fn k_one_groups_everything() {
        let c = kmeans(&blobs(), KMeansParams { k: 1, max_iters: 10, seed: 2 });
        assert_eq!(c.n_clusters, 1);
        assert!(c.assignment.iter().all(|&x| x == 0));
    }
}
