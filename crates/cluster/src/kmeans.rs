//! K-Means with kmeans++ initialization (ablation alternative to DBSCAN).
//!
//! One implementation over a contiguous [`FeatureMatrix`]
//! ([`kmeans_matrix`]): the Lloyd assignment step — the O(n·k·dim) hot
//! loop — scores centroids with the dot trick
//! (`argmin ‖x − c‖² = argmin ‖c‖² − 2·x·c`, the `‖x‖²` term being
//! constant per point) and runs in parallel shards; the update step is a
//! cheap serial pass so centroid sums accumulate in one fixed order and
//! the result stays bit-identical whatever the thread count. The slice
//! front end ([`kmeans`]) packs its input into a matrix and delegates.

use embed::matrix::FeatureMatrix;
use embed::par::par_map;
use embed::vecmath::dot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Clustering;

/// K-Means parameters.
#[derive(Debug, Clone, Copy)]
pub struct KMeansParams {
    /// Number of clusters `k` (clamped to the number of points).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for kmeans++ initialization.
    pub seed: u64,
}

impl Default for KMeansParams {
    fn default() -> Self {
        Self { k: 8, max_iters: 50, seed: 42 }
    }
}

/// Runs K-Means over per-point vectors (packs into a [`FeatureMatrix`]
/// and calls [`kmeans_matrix`]).
pub fn kmeans(points: &[Vec<f64>], params: KMeansParams) -> Clustering {
    kmeans_matrix(&FeatureMatrix::from_rows(points.to_vec()), params)
}

/// Runs K-Means (Lloyd's algorithm, kmeans++ seeding, Euclidean metric)
/// over a contiguous feature matrix.
///
/// Clusters that become empty during iteration are re-seeded with the
/// point farthest from its assigned centroid, so the output always has
/// exactly `min(k, n)` non-empty clusters.
pub fn kmeans_matrix(matrix: &FeatureMatrix, params: KMeansParams) -> Clustering {
    let n = matrix.len();
    if n == 0 {
        return Clustering { assignment: vec![], n_clusters: 0 };
    }
    let k = params.k.clamp(1, n);
    let dim = matrix.dim();
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Centroids live in one flat k×dim buffer with cached ‖c‖².
    let mut centroids = init_plus_plus(matrix, k, &mut rng);
    let mut cent_sq = centroid_sq_norms(&centroids, k, dim);
    let mut assignment = vec![0usize; n];

    for _ in 0..params.max_iters {
        // Assignment step — parallel; each point's argmin is a pure
        // function of (row, centroids), so shard count cannot change it.
        let new_assignment = par_map(n, 64, |i| {
            nearest_centroid(matrix.row(i), &centroids, &cent_sq, dim)
        });
        let mut changed = new_assignment != assignment;
        assignment = new_assignment;

        // Update step — serial so centroid sums accumulate in input
        // order (floating-point addition is order-sensitive).
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0usize; k];
        for (i, row) in matrix.rows().enumerate() {
            let c = assignment[i];
            counts[c] += 1;
            for (d, &x) in row.iter().enumerate() {
                sums[c * dim + d] += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the worst-fitted point
                // (last point among ties, matching `Iterator::max_by`).
                let mut far = 0usize;
                let mut far_d = f64::NEG_INFINITY;
                for (i, &a) in assignment.iter().enumerate() {
                    let d = sq_dist_to_centroid(matrix, i, &centroids, &cent_sq, a, dim);
                    if d >= far_d {
                        far_d = d;
                        far = i;
                    }
                }
                centroids[c * dim..(c + 1) * dim].copy_from_slice(matrix.row(far));
                assignment[far] = c;
                changed = true;
            } else {
                for d in 0..dim {
                    centroids[c * dim + d] = sums[c * dim + d] / counts[c] as f64;
                }
            }
            cent_sq[c] = dot(
                &centroids[c * dim..(c + 1) * dim],
                &centroids[c * dim..(c + 1) * dim],
            );
        }
        if !changed {
            break;
        }
    }

    compact(assignment, k)
}

/// kmeans++ seeding: each next centroid is sampled proportionally to the
/// squared distance from the nearest already-chosen centroid. The
/// nearest-centroid distances are maintained incrementally (one kernel
/// pass per new centroid) instead of rescanning all chosen centroids.
fn init_plus_plus(matrix: &FeatureMatrix, k: usize, rng: &mut StdRng) -> Vec<f64> {
    let n = matrix.len();
    let dim = matrix.dim();
    let mut centroids: Vec<f64> = Vec::with_capacity(k * dim);
    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(matrix.row(first));
    let mut d2: Vec<f64> = (0..n).map(|i| matrix.sq_dist_rows(first, i)).collect();
    while centroids.len() < k * dim {
        let total: f64 = d2.iter().sum();
        let choice = if total <= 0.0 {
            // All points coincide with existing centroids; any index works.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
            }
            idx
        };
        centroids.extend_from_slice(matrix.row(choice));
        for (i, slot) in d2.iter_mut().enumerate() {
            *slot = slot.min(matrix.sq_dist_rows(choice, i));
        }
    }
    centroids
}

fn centroid_sq_norms(centroids: &[f64], k: usize, dim: usize) -> Vec<f64> {
    (0..k)
        .map(|c| {
            dot(
                &centroids[c * dim..(c + 1) * dim],
                &centroids[c * dim..(c + 1) * dim],
            )
        })
        .collect()
}

/// Argmin over centroids of `‖c‖² − 2·x·c` (first minimum wins, matching
/// the scalar reference's strict-`<` scan).
fn nearest_centroid(x: &[f64], centroids: &[f64], cent_sq: &[f64], dim: usize) -> usize {
    let mut best = 0;
    let mut best_score = f64::INFINITY;
    for (c, &c_sq) in cent_sq.iter().enumerate() {
        let score = c_sq - 2.0 * dot(x, &centroids[c * dim..(c + 1) * dim]);
        if score < best_score {
            best_score = score;
            best = c;
        }
    }
    best
}

fn sq_dist_to_centroid(
    matrix: &FeatureMatrix,
    i: usize,
    centroids: &[f64],
    cent_sq: &[f64],
    c: usize,
    dim: usize,
) -> f64 {
    (matrix.sq_norm(i) + cent_sq[c] - 2.0 * dot(matrix.row(i), &centroids[c * dim..(c + 1) * dim]))
        .max(0.0)
}

/// Renumbers cluster ids densely (some may be empty after convergence on
/// degenerate data).
fn compact(assignment: Vec<usize>, k: usize) -> Clustering {
    let mut remap = vec![usize::MAX; k];
    let mut next = 0usize;
    let mut out = Vec::with_capacity(assignment.len());
    for cid in assignment {
        if remap[cid] == usize::MAX {
            remap[cid] = next;
            next += 1;
        }
        out.push(remap[cid]);
    }
    Clustering { assignment: out, n_clusters: next }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![i as f64 * 0.1, 0.0]);
        }
        for i in 0..10 {
            pts.push(vec![50.0 + i as f64 * 0.1, 50.0]);
        }
        pts
    }

    #[test]
    fn two_blobs_two_clusters() {
        let c = kmeans(&blobs(), KMeansParams { k: 2, max_iters: 100, seed: 1 });
        assert!(c.is_consistent());
        assert_eq!(c.n_clusters, 2);
        assert!(c.assignment[..10].iter().all(|&x| x == c.assignment[0]));
        assert!(c.assignment[10..].iter().all(|&x| x == c.assignment[10]));
        assert_ne!(c.assignment[0], c.assignment[10]);
    }

    #[test]
    fn k_clamped_to_n() {
        let pts = vec![vec![0.0], vec![1.0]];
        let c = kmeans(&pts, KMeansParams { k: 10, max_iters: 10, seed: 3 });
        assert!(c.is_consistent());
        assert!(c.n_clusters <= 2);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = kmeans(&blobs(), KMeansParams { k: 4, max_iters: 50, seed: 9 });
        let b = kmeans(&blobs(), KMeansParams { k: 4, max_iters: 50, seed: 9 });
        assert_eq!(a, b);
    }

    #[test]
    fn serial_equals_parallel() {
        let matrix = FeatureMatrix::from_rows(blobs());
        let params = KMeansParams { k: 5, max_iters: 40, seed: 11 };
        let parallel = kmeans_matrix(&matrix, params);
        let serial = embed::par::with_max_threads(1, || kmeans_matrix(&matrix, params));
        assert_eq!(parallel, serial);
    }

    #[test]
    fn empty_input() {
        let c = kmeans(&[], KMeansParams::default());
        assert_eq!(c.n_clusters, 0);
    }

    #[test]
    fn identical_points_collapse() {
        let pts = vec![vec![5.0, 5.0]; 12];
        let c = kmeans(&pts, KMeansParams { k: 3, max_iters: 20, seed: 7 });
        assert!(c.is_consistent());
        // All points identical: ids must be valid whatever the cluster count.
        assert_eq!(c.assignment.len(), 12);
    }

    #[test]
    fn k_one_groups_everything() {
        let c = kmeans(&blobs(), KMeansParams { k: 1, max_iters: 10, seed: 2 });
        assert_eq!(c.n_clusters, 1);
        assert!(c.assignment.iter().all(|&x| x == 0));
    }
}
