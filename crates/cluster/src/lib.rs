//! Unsupervised clustering over dense feature vectors.
//!
//! The BatchER question-batching framework (§III, Fig. 3) clusters question
//! feature vectors before grouping them into batches. The paper uses
//! DBSCAN (its footnote: "the algorithm achieves the best performance");
//! K-Means is provided for the ablation bench.
//!
//! Both algorithms accept either `&[Vec<f64>]` (reference slice front
//! ends) or a contiguous [`embed::FeatureMatrix`] ([`dbscan_matrix`],
//! [`kmeans_matrix`] — the production kernel paths: pivot-pruned region
//! queries, dot-trick assignment, parallel shards), and return a
//! [`Clustering`]: a cluster id per point, where DBSCAN noise points each
//! form a singleton cluster (the batcher must still query every question,
//! so no point may be dropped).

pub mod dbscan;
pub mod kmeans;

pub use dbscan::{
    dbscan, dbscan_from_neighbor_lists, dbscan_matrix, dbscan_neighbor_lists, DbscanParams,
};
pub use kmeans::{kmeans, kmeans_matrix, KMeansParams};

/// A clustering result: `assignment[i]` is the cluster id of point `i`;
/// ids are dense in `0..n_clusters`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Cluster id per input point.
    pub assignment: Vec<usize>,
    /// Number of clusters.
    pub n_clusters: usize,
}

impl Clustering {
    /// Groups point indices by cluster id. The outer vec has length
    /// `n_clusters`; inner vecs list member point indices in input order.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.n_clusters];
        for (point, &cid) in self.assignment.iter().enumerate() {
            groups[cid].push(point);
        }
        groups
    }

    /// Size of the largest cluster, or 0 for an empty clustering.
    pub fn max_cluster_size(&self) -> usize {
        self.groups().iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Validates internal consistency (dense ids, all points assigned).
    /// Used by tests and debug assertions.
    pub fn is_consistent(&self) -> bool {
        if self.n_clusters == 0 {
            return self.assignment.is_empty();
        }
        let mut seen = vec![false; self.n_clusters];
        for &cid in &self.assignment {
            if cid >= self.n_clusters {
                return false;
            }
            seen[cid] = true;
        }
        seen.into_iter().all(|s| s)
    }
}

/// Euclidean distance, the default metric for question features
/// (the paper reports Euclidean works best, §III-B).
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_partition_points() {
        let c = Clustering { assignment: vec![0, 1, 0, 2, 1], n_clusters: 3 };
        assert!(c.is_consistent());
        let g = c.groups();
        assert_eq!(g, vec![vec![0, 2], vec![1, 4], vec![3]]);
        assert_eq!(c.max_cluster_size(), 2);
    }

    #[test]
    fn consistency_detects_gaps() {
        // id 1 unused -> not dense.
        let c = Clustering { assignment: vec![0, 2, 2], n_clusters: 3 };
        assert!(!c.is_consistent());
        let c2 = Clustering { assignment: vec![0, 3], n_clusters: 2 };
        assert!(!c2.is_consistent());
    }

    #[test]
    fn empty_clustering() {
        let c = Clustering { assignment: vec![], n_clusters: 0 };
        assert!(c.is_consistent());
        assert_eq!(c.max_cluster_size(), 0);
    }

    #[test]
    fn euclidean_metric() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }
}
