//! Offline stand-in for `serde_json`: renders the vendored serde
//! [`Content`] tree to JSON text and parses JSON text back into it.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes
//! and `\uXXXX` surrogate pairs, numbers, booleans, null). Numbers parse
//! to `I64`/`U64` when integral and `F64` otherwise; the vendored serde
//! numeric impls accept either representation, so `1` and `1.0`
//! interconvert exactly as with the real crates.

use serde::{Content, Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out)?;
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let content = parse(text)?;
    T::from_content(&content).map_err(|e| Error::new(e.to_string()))
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| Error::new(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(text)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_content(content: &Content, out: &mut String) -> Result<(), Error> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float as JSON"));
            }
            // Rust's Display for f64 is shortest-roundtrip and never uses
            // exponent notation, both of which are valid JSON.
            out.push_str(&f.to_string());
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(key, out);
                out.push(':');
                write_content(value, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Content, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            parser.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Content::Str),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(b) => {
                    return Err(Error::new(format!(
                        "unescaped control byte 0x{b:02x} in string at byte {}",
                        self.pos
                    )))
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("dangling escape at end of input"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{08}',
            b'f' => '\u{0C}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair.
                    if !(self.eat_keyword("\\u")) {
                        return Err(Error::new("lone high surrogate in string"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(Error::new("invalid low surrogate in string"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| Error::new("invalid surrogate pair"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| Error::new("invalid \\u escape"))?
                }
            }
            other => return Err(Error::new(format!("unknown escape `\\{}`", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::new("non-ASCII in \\u escape"))?;
        let value = u32::from_str_radix(text, 16)
            .map_err(|_| Error::new(format!("bad \\u escape `{text}`")))?;
        self.pos = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(if n >= 0 {
                    Content::U64(n as u64)
                } else {
                    Content::I64(n)
                });
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Content::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(parse("42").unwrap(), Content::U64(42));
        assert_eq!(parse("-3").unwrap(), Content::I64(-3));
        assert_eq!(parse("0.25").unwrap(), Content::F64(0.25));
        assert_eq!(parse("true").unwrap(), Content::Bool(true));
        assert_eq!(parse("null").unwrap(), Content::Null);
        assert_eq!(parse(r#""hi""#).unwrap(), Content::Str("hi".into()));
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a": [1, {"b": "c"}], "d": null}"#;
        let v = parse(text).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Content::Seq(vec![
                Content::U64(1),
                Content::Map(vec![("b".into(), Content::Str("c".into()))]),
            ]))
        );
        assert_eq!(v.get("d"), Some(&Content::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\nquote\"back\\slash\ttab \u{1F600} unicode é";
        let mut out = String::new();
        write_json_string(original, &mut out);
        let back = parse(&out).unwrap();
        assert_eq!(back, Content::Str(original.into()));
    }

    #[test]
    fn unicode_escape_parsing() {
        assert_eq!(parse(r#""é😀""#).unwrap(), Content::Str("é😀".into()));
    }

    #[test]
    fn float_roundtrip_exact() {
        for f in [0.01f64, 1.0 / 3.0, 1e-9, 123456.789] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{f} did not roundtrip through {text}");
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("12 34").is_err());
        assert!(from_slice::<u64>(b"\xff\xff").is_err());
    }

    #[test]
    fn typed_roundtrip_via_traits() {
        let v: Vec<u64> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
    }
}
