//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (locking never returns a `Result`). A thread panicking while holding a
//! lock simply passes the lock on — the data-consistency story is the
//! caller's, exactly as with the real crate.

use std::sync::PoisonError;
use std::time::Duration;

/// A mutex whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so a condvar wait can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside condvar wait")
    }
}

/// An rw-lock whose `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable bound to [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
