//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! supplies the subset of serde's programming model the workspace relies
//! on: `#[derive(Serialize, Deserialize)]` on plain structs, newtype
//! structs and unit-variant enums, the `#[serde(default)]` /
//! `#[serde(default = "path")]` field attributes, and trait bounds of the
//! shape `T: Serialize + for<'de> Deserialize<'de>`.
//!
//! Instead of real serde's visitor architecture, values convert through a
//! self-describing [`Content`] tree (the moral equivalent of
//! `serde_json::Value`), which the sibling `serde_json` stand-in renders
//! to and parses from JSON text. That collapses serde's double dispatch
//! into one enum walk — entirely sufficient for the loopback wire formats
//! this workspace exchanges with itself.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The string, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a map key.
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types renderable to a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into content.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
///
/// The `'de` lifetime exists for signature compatibility with real serde's
/// `for<'de> Deserialize<'de>` bounds; this implementation always copies
/// out of the tree.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs a value from content.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let raw: u64 = match content {
                    Content::U64(n) => *n,
                    Content::I64(n) if *n >= 0 => *n as u64,
                    Content::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let raw: i64 = match content {
                    Content::I64(n) => *n,
                    Content::U64(n) if *n <= i64::MAX as u64 => *n as i64,
                    Content::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::F64(f) => Ok(*f as $t),
                    Content::U64(n) => Ok(*n as $t),
                    Content::I64(n) => Ok(*n as $t),
                    other => Err(DeError::custom(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_content(&7u64.to_content()).unwrap(), 7);
        assert_eq!(i64::from_content(&(-3i64).to_content()).unwrap(), -3);
        assert_eq!(f64::from_content(&0.25f64.to_content()).unwrap(), 0.25);
        assert_eq!(
            String::from_content(&"hi".to_content()).unwrap(),
            "hi".to_owned()
        );
        assert!(bool::from_content(&true.to_content()).unwrap());
    }

    #[test]
    fn numeric_cross_decoding() {
        // Integral floats (a JSON "1" parsed as int) decode into floats.
        assert_eq!(f64::from_content(&Content::U64(4)).unwrap(), 4.0);
        assert_eq!(u32::from_content(&Content::I64(9)).unwrap(), 9);
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(u64::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn options_and_vecs() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::from_content(&v.to_content()).unwrap(), v);
        assert_eq!(Option::<u64>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_content(&Content::U64(1)).unwrap(),
            Some(1)
        );
    }

    #[test]
    fn content_lookup() {
        let c = Content::Map(vec![("a".into(), Content::U64(1))]);
        assert_eq!(c.get("a"), Some(&Content::U64(1)));
        assert_eq!(c.get("b"), None);
    }
}
