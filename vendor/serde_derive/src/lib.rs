//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled derive macros (no `syn`/`quote` — they are unavailable
//! offline) covering the item shapes this workspace derives on:
//!
//! * structs with named fields, honoring `#[serde(default)]` and
//!   `#[serde(default = "path")]` field attributes;
//! * single-field tuple structs (serialized transparently, serde's
//!   newtype convention);
//! * enums whose variants are all units (serialized as the variant name).
//!
//! Anything else — generics, multi-field tuples, data-carrying variants,
//! other serde attributes — is rejected with a compile error naming the
//! unsupported construct, so drift between this stub and real serde shows
//! up loudly at build time rather than silently at run time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled during deserialization.
#[derive(Debug, Clone, PartialEq)]
enum FieldDefault {
    /// No default: missing field is an error.
    Required,
    /// `#[serde(default)]` — `Default::default()`.
    Std,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: FieldDefault,
}

#[derive(Debug)]
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    NewtypeStruct { name: String },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{n}\"), \
                         ::serde::Serialize::to_content(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                     ::serde::Serialize::to_content(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Content::Str(\
                         ::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    body.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let missing = match &f.default {
                        FieldDefault::Required => format!(
                            "return ::std::result::Result::Err(\
                             ::serde::DeError::custom(\
                             \"missing field `{}` in {}\"))",
                            f.name, name
                        ),
                        FieldDefault::Std => "::std::default::Default::default()".to_owned(),
                        FieldDefault::Path(path) => format!("{path}()"),
                    };
                    format!(
                        "{n}: match ::serde::Content::get(content, \"{n}\") {{\n\
                             ::std::option::Option::Some(v) => \
                                 ::serde::Deserialize::from_content(v)?,\n\
                             ::std::option::Option::None => {{ {missing} }},\n\
                         }}",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if content.as_map().is_none() {{\n\
                             return ::std::result::Result::Err(\
                                 ::serde::DeError::custom(\
                                 \"expected map for struct {name}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(",\n")
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn from_content(content: &::serde::Content) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(\
                         ::serde::Deserialize::from_content(content)?))\n\
                 }}\n\
             }}"
        ),
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match content.as_str() {{\n\
                             ::std::option::Option::Some(s) => match s {{\n\
                                 {},\n\
                                 other => ::std::result::Result::Err(\
                                     ::serde::DeError::custom(::std::format!(\
                                     \"unknown {name} variant: {{other}}\"))),\n\
                             }},\n\
                             ::std::option::Option::None => \
                                 ::std::result::Result::Err(\
                                 ::serde::DeError::custom(\
                                 \"expected string for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    body.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Outer attributes (doc comments, derives already stripped, serde
    // container attributes — none of which we support, so reject them).
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            let text = g.stream().to_string();
            if text.starts_with("serde") {
                panic!(
                    "serde container attributes are not supported by the vendored derive: {text}"
                );
            }
        }
        i += 2;
    }

    // Visibility.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("generic items are not supported by the vendored serde derive (item `{name}`)");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g.stream());
                if arity != 1 {
                    panic!(
                        "tuple struct `{name}` has {arity} fields; only newtype \
                         (1-field) tuple structs are supported"
                    );
                }
                Item::NewtypeStruct { name }
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::UnitEnum {
                name: name.clone(),
                variants: parse_unit_variants(&name, g.stream()),
            },
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    }
}

/// Parses `{ attrs vis name: Type, ... }` field lists.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Field attributes.
        let mut default = FieldDefault::Required;
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if let Some(d) = parse_serde_default(g.stream()) {
                    default = d;
                }
            }
            i += 2;
        }
        // Visibility.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(field_name)) = tokens.get(i) else {
            break; // trailing comma
        };
        let name = field_name.to_string();
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: tokens until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field { name, default });
    }
    fields
}

/// Extracts a `FieldDefault` from a `serde(...)` attribute body.
fn parse_serde_default(stream: TokenStream) -> Option<FieldDefault> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(args)]
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            match inner.as_slice() {
                [TokenTree::Ident(kw)] if kw.to_string() == "default" => Some(FieldDefault::Std),
                [TokenTree::Ident(kw), TokenTree::Punct(eq), TokenTree::Literal(lit)]
                    if kw.to_string() == "default" && eq.as_char() == '=' =>
                {
                    let raw = lit.to_string();
                    let path = raw.trim_matches('"').to_owned();
                    Some(FieldDefault::Path(path))
                }
                other => panic!(
                    "unsupported serde field attribute: serde({})",
                    other
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(" ")
                ),
            }
        }
        _ => None, // not a serde attribute (doc comment etc.)
    }
}

/// Counts comma-separated fields of a tuple-struct body at angle depth 0.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0i32;
    let mut saw_token_since_comma = true;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_token_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

/// Parses enum variants, insisting they are all units.
fn parse_unit_variants(enum_name: &str, stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2; // attribute (doc comment)
        }
        let Some(TokenTree::Ident(v)) = tokens.get(i) else {
            break;
        };
        let variant = v.to_string();
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                i += 1;
            }
            Some(TokenTree::Group(_)) => panic!(
                "enum `{enum_name}` variant `{variant}` carries data; only \
                 unit variants are supported by the vendored serde derive"
            ),
            Some(other) => panic!("unexpected token after variant `{variant}`: {other}"),
        }
        variants.push(variant);
    }
    variants
}
