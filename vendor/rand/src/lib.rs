//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the subset of the `rand 0.8` API surface the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is SplitMix64 — statistically solid for simulation and
//! sampling workloads (it is the seeding generator of the reference
//! xoshiro implementations), deterministic across platforms, and trivially
//! seedable from a `u64`. It is **not** cryptographically secure, which
//! matches how the workspace uses randomness (shuffles, noise injection,
//! subsampling) and how the real `StdRng` is documented to be used here.

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from the full value domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
///
/// Parameterized over the element type (rather than using an associated
/// type) so integer-literal ranges infer their width from the call site,
/// exactly as with the real crate.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty, matching `rand`'s contract.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // Floating rounding can land exactly on `end`; clamp out.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Extension methods over any [`RngCore`] — mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed — mirrors `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // One warm-up step decorrelates small consecutive seeds.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4u8);
            assert!(w <= 4);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "skewed bucket: {b}");
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "p=0.3 produced {hits}");
    }
}
