//! Offline stand-in for `criterion`.
//!
//! Provides the harness surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], `criterion_group!`, `criterion_main!` — with a
//! simple but honest wall-clock measurement loop:
//!
//! * In **bench mode** (`cargo bench`, detected via the `--bench` flag
//!   cargo passes) each benchmark is warmed up, then timed over
//!   `sample_size` samples whose per-sample iteration count is calibrated
//!   so a sample takes ≳5 ms. The median, minimum and maximum per-iteration
//!   times are printed.
//! * In **test mode** (`cargo test` compiles bench targets with
//!   `harness = false` and runs them) every benchmark body executes once,
//!   so benches stay smoke-tested without slowing the suite down.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    quick: bool,
    default_sample_size: usize,
}

impl Criterion {
    /// A harness configured from the process arguments (cargo passes
    /// `--bench` when invoked as `cargo bench`).
    pub fn from_args() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Self { quick: !bench_mode, default_sample_size: 20 }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.quick, self.default_sample_size, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.quick {
            println!("group {name}");
        }
        BenchmarkGroup { harness: self, name, sample_size: None }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.harness.default_sample_size);
        run_one(&full, self.harness.quick, samples, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the routine
/// under measurement.
#[derive(Debug)]
pub struct Bencher {
    quick: bool,
    samples: usize,
    /// Median/min/max per-iteration nanoseconds, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Measures `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.quick {
            black_box(routine());
            return;
        }
        // Calibrate the per-sample iteration count to ≳5 ms.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        per_iter_ns.sort_by(f64::total_cmp);
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let max = per_iter_ns[per_iter_ns.len() - 1];
        self.result = Some((median, min, max));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, quick: bool, samples: usize, f: &mut F) {
    let mut bencher = Bencher { quick, samples: samples.max(2), result: None };
    f(&mut bencher);
    if quick {
        return;
    }
    match bencher.result {
        Some((median, min, max)) => println!(
            "  {id:<44} {:>12}/iter  (min {}, max {})",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max)
        ),
        None => println!("  {id:<44} (no measurement: Bencher::iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut count = 0u32;
        let mut b = Bencher { quick: true, samples: 10, result: None };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert!(b.result.is_none());
    }

    #[test]
    fn measurement_produces_ordered_stats() {
        let mut b = Bencher { quick: false, samples: 5, result: None };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        let (median, min, max) = b.result.unwrap();
        assert!(min <= median && median <= max);
        assert!(min > 0.0);
    }

    #[test]
    fn formatting_scales() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("µs"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
        assert!(fmt_ns(2_000_000_000.0).ends_with('s'));
    }
}
