//! The [`Strategy`] trait and its implementations.

use crate::{Arbitrary, TestRng};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`crate::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.below(span as u64)) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                let v = self.start + unit * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_tuple {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

// ---------------------------------------------------------------------
// Regex-literal string strategies
// ---------------------------------------------------------------------

/// String literals act as regex strategies, supporting the subset used in
/// this workspace: one `[class]{lo,hi}` or `\PC{lo,hi}` atom.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = RegexPattern::parse(self);
        pattern.generate(rng)
    }
}

struct RegexPattern {
    alphabet: Vec<char>,
    lo: usize,
    hi: usize, // inclusive
}

/// Printable sample set for `\PC` (any non-control char): ASCII printable
/// plus a few multibyte characters so UTF-8 boundary handling gets
/// exercised.
fn printable_alphabet() -> Vec<char> {
    let mut chars: Vec<char> = (0x20u8..0x7F).map(char::from).collect();
    chars.extend(['é', 'ß', 'Ω', '中', '✓']);
    chars
}

impl RegexPattern {
    fn parse(pattern: &str) -> Self {
        let rest = pattern;
        let (alphabet, rest) = if let Some(rest) = rest.strip_prefix("\\PC") {
            (printable_alphabet(), rest)
        } else if let Some(body_start) = rest.strip_prefix('[') {
            let close = body_start
                .find(']')
                .unwrap_or_else(|| panic!("unterminated class in pattern `{pattern}`"));
            // `]` cannot be escaped in the supported subset; none of the
            // workspace patterns contain one.
            let class = &body_start[..close];
            (parse_class(class, pattern), &body_start[close + 1..])
        } else {
            panic!(
                "unsupported regex strategy `{pattern}`; the vendored proptest \
                 supports a single `[class]{{lo,hi}}` or `\\PC{{lo,hi}}` atom"
            );
        };
        let (lo, hi) = parse_repeat(rest, pattern);
        assert!(
            !alphabet.is_empty(),
            "empty character class in pattern `{pattern}`"
        );
        Self { alphabet, lo, hi }
    }

    fn generate(&self, rng: &mut TestRng) -> String {
        let span = (self.hi - self.lo + 1) as u64;
        let len = self.lo + rng.below(span) as usize;
        (0..len)
            .map(|_| self.alphabet[rng.below(self.alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_class(class: &str, pattern: &str) -> Vec<char> {
    let mut out = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\\' {
            let escaped = *chars
                .get(i + 1)
                .unwrap_or_else(|| panic!("dangling escape in `{pattern}`"));
            out.push(escaped);
            i += 2;
        } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (start, end) = (c as u32, chars[i + 2] as u32);
            assert!(start <= end, "inverted range in `{pattern}`");
            for code in start..=end {
                if let Some(ch) = char::from_u32(code) {
                    out.push(ch);
                }
            }
            i += 3;
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

fn parse_repeat(rest: &str, pattern: &str) -> (usize, usize) {
    let body = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| {
            panic!("expected `{{lo,hi}}` repetition in pattern `{pattern}`, got `{rest}`")
        });
    let (lo, hi) = body
        .split_once(',')
        .unwrap_or_else(|| panic!("expected `lo,hi` in `{pattern}`"));
    let lo: usize = lo.trim().parse().expect("numeric lower bound");
    let hi: usize = hi.trim().parse().expect("numeric upper bound");
    assert!(lo <= hi, "inverted repetition in `{pattern}`");
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let a = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&a));
            let b = (-5i64..5).generate(&mut r);
            assert!((-5..5).contains(&b));
            let c = (0.0f64..1.0).generate(&mut r);
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn class_patterns_only_emit_class_chars() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-c0-1 .,()\\-]{0,18}".generate(&mut r);
            assert!(s.len() <= 18);
            for ch in s.chars() {
                assert!(
                    matches!(
                        ch,
                        'a'..='c' | '0' | '1' | ' ' | '.' | ',' | '(' | ')' | '-'
                    ),
                    "unexpected char {ch:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn printable_patterns_exclude_controls() {
        let mut r = rng();
        let mut max_len = 0;
        for _ in 0..300 {
            let s = "\\PC{0,40}".generate(&mut r);
            max_len = max_len.max(s.chars().count());
            assert!(s.chars().all(|c| !c.is_control()));
            assert!(s.chars().count() <= 40);
        }
        assert!(max_len > 20, "length distribution looks truncated");
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut r = rng();
        let v = collection::vec((0u32..5, "[x-z]{1,2}"), 2..6).generate(&mut r);
        assert!((2..6).contains(&v.len()));
        for (n, s) in &v {
            assert!(*n < 5);
            assert!((1..=2).contains(&s.len()));
        }
        let fixed = collection::vec(0.0f64..1.0, 3).generate(&mut r);
        assert_eq!(fixed.len(), 3);
    }

    #[test]
    fn prop_map_applies() {
        let mut r = rng();
        let s = (0u64..10).prop_map(|n| n * 2);
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        let strat = "\\PC{0,20}";
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
