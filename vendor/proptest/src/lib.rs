//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use: numeric range strategies, regex-literal string
//! strategies (character classes and `\PC`), `prop::collection::vec`,
//! `prop::bool::ANY`, `any::<T>()`, tuples, `prop_map`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its index and message; the
//!   deterministic generator means re-running reproduces it exactly.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   the test function's name, so failures are stable across runs and
//!   machines — there is no persistence file.
//! * **Regex strategies** support exactly the subset used here: a single
//!   `[class]{lo,hi}` or `\PC{lo,hi}` atom (with `-` ranges and `\`
//!   escapes inside classes).

pub mod strategy;

pub use strategy::{Any, Map, Strategy};

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 96 keeps the suite brisk while
        // still exercising the properties broadly. Override per test with
        // `#![proptest_config(ProptestConfig::with_cases(n))]`.
        Self { cases: 96 }
    }
}

/// The deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from a stable hash of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a canonical "anything" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws a fully random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite floats across magnitudes, not raw bit soup.
        let mag = rng.unit_f64() * 200.0 - 100.0;
        mag.exp2() * if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 }
    }
}

/// The strategy of "any value of `T`" — mirrors `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Namespaced strategy modules re-exported as `prop` by the prelude.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification for [`vec`]: a fixed size or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Inclusive lower and exclusive upper bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// A strategy producing vectors of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty size range for collection::vec");
        VecStrategy { element, lo, hi }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.hi - self.lo) as u64;
            let len = self.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Any boolean.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The `prop::` namespace used via the prelude.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Everything a property test file imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig,
        Strategy,
    };
}

/// Asserts inside a `proptest!` body; failure aborts the current case
/// with a message rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Declares property tests. Mirrors `proptest::proptest!` syntax for
/// plain-identifier argument lists.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_cases {
    ( ($config:expr)
      $( $(#[$attr:meta])*
         fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    let outcome = (move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest case {case} of {} failed:\n{message}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}
